//! GRAMC execution backend for LeNet-5 (the paper's Fig. 5 pipeline).
//!
//! "The trained weights of each layer are loaded to the RRAM array by
//! write-verify circuits. The convolutional computation results are
//! transferred to the digital functional module to execute the pooling and
//! activation operations."
//!
//! Execution is **layer-serial over the whole batch**: each layer's weight
//! matrix is written into the macro group (INT4 differential or INT8
//! bit-sliced planes), every image's activations stream through it via
//! batched analog MVM, pooling/ReLU run in the digital functional module,
//! and the macros are freed for the next layer. This is how a 16-macro
//! system executes a network whose INT8 mapping would not fit resident.
//! Biases are added digitally (the crossbar computes the pure product).

use gramc_core::functional::argmax;
use gramc_core::tiling::{TileMapping, TiledOperator};
use gramc_core::{CoreError, MacroConfig, MacroGroup};
use gramc_linalg::Matrix;

use crate::layers::im2col;
use crate::lenet::LeNet5;
use crate::quant::Precision;
use crate::tensor::Tensor3;

/// LeNet-5 running on the analog macro group.
#[derive(Debug)]
pub struct GramcLenet {
    group: MacroGroup,
    model: LeNet5,
    precision: Precision,
}

impl GramcLenet {
    /// Wraps a trained model for analog execution at the given precision.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if `precision` is
    /// [`Precision::Float32`] (use the software model directly for the
    /// float baseline).
    pub fn new(
        model: LeNet5,
        precision: Precision,
        config: MacroConfig,
        n_macros: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if precision == Precision::Float32 {
            return Err(CoreError::InvalidArgument(
                "float32 is the software baseline; run LeNet5::evaluate instead",
            ));
        }
        Ok(Self { group: MacroGroup::new(n_macros, config, seed), model, precision })
    }

    fn mapping(&self) -> TileMapping {
        match self.precision {
            Precision::Int4 => TileMapping::FourBit,
            Precision::Int8 => TileMapping::BitSlicedInt8,
            Precision::Float32 => unreachable!("rejected in constructor"),
        }
    }

    /// Computes logits for a batch of images through the analog pipeline.
    ///
    /// # Errors
    ///
    /// Capacity errors if the macro group cannot hold a layer; analog-path
    /// errors propagate.
    pub fn logits_batch(&mut self, images: &[Tensor3]) -> Result<Vec<Vec<f64>>, CoreError> {
        let mapping = self.mapping();
        let group = &mut self.group;
        lenet_forward(&self.model, images, |w, batches| {
            let mut tiled = TiledOperator::load(group, w, mapping)?;
            let result: Result<Vec<_>, CoreError> =
                batches.iter().map(|xs| tiled.mvm_batch(group, xs)).collect();
            tiled.free(group)?;
            result
        })
    }

    /// Predicted classes for a batch.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    pub fn predict_batch(&mut self, images: &[Tensor3]) -> Result<Vec<usize>, CoreError> {
        Ok(self.logits_batch(images)?.iter().map(|l| argmax(l)).collect())
    }

    /// Classification accuracy of the analog pipeline on a labelled set.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len()`.
    pub fn evaluate(&mut self, images: &[Tensor3], labels: &[usize]) -> Result<f64, CoreError> {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        if images.is_empty() {
            return Ok(0.0);
        }
        let preds = self.predict_batch(images)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / images.len() as f64)
    }
}

/// The LeNet-5 forward pipeline shared by the single-group and sharded
/// backends: im2col, feature-map assembly, digital bias add, ReLU and
/// pooling, plus the fully-connected stack. `run_layer` is the only
/// analog-specific step: load the layer's weight matrix, run one batched
/// MVM per entry of `batches` (in order), free the tiles — even when an
/// MVM fails, so a long-lived runtime doesn't leak capacity — and return
/// the raw products.
pub(crate) fn lenet_forward<E>(
    model: &LeNet5,
    images: &[Tensor3],
    mut run_layer: impl FnMut(&Matrix, &[Vec<Vec<f64>>]) -> Result<Vec<Vec<Vec<f64>>>, E>,
) -> Result<Vec<Vec<f64>>, E> {
    if images.is_empty() {
        return Ok(Vec::new());
    }
    // conv1 over all images (one im2col batch per image, one weight load).
    let batches: Vec<Vec<Vec<f64>>> = images.iter().map(im2col_batch).collect();
    let conv1 = run_layer(&model.conv1.weights, &batches)?;
    let pooled1: Vec<Tensor3> =
        conv1.iter().map(|ys| relu_pool2(&assemble_fmap(ys, &model.conv1.bias, 6, 24))).collect();
    // conv2.
    let batches: Vec<Vec<Vec<f64>>> = pooled1.iter().map(im2col_batch).collect();
    let conv2 = run_layer(&model.conv2.weights, &batches)?;
    let pooled2: Vec<Vec<f64>> = conv2
        .iter()
        .map(|ys| relu_pool2(&assemble_fmap(ys, &model.conv2.bias, 16, 8)).into_vec())
        .collect();
    // Fully-connected stack: whole batch per layer, digital bias + ReLU.
    let mut fc = |w: &Matrix, bias: &[f64], xs: Vec<Vec<f64>>, relu: bool| {
        let mut ys = run_layer(w, std::slice::from_ref(&xs))?.pop().expect("one batch in, one out");
        for y in ys.iter_mut() {
            for (yi, b) in y.iter_mut().zip(bias) {
                *yi += b;
            }
            if relu {
                for yi in y.iter_mut() {
                    *yi = yi.max(0.0);
                }
            }
        }
        Ok(ys)
    };
    let a1 = fc(&model.fc1.weights, &model.fc1.bias, pooled2, true)?;
    let a2 = fc(&model.fc2.weights, &model.fc2.bias, a1, true)?;
    fc(&model.fc3.weights, &model.fc3.bias, a2, false)
}

/// One im2col batch (5×5 windows): one input vector per output position.
fn im2col_batch(t: &Tensor3) -> Vec<Vec<f64>> {
    let cols = im2col(t, 5);
    (0..cols.cols()).map(|j| cols.col(j)).collect()
}

/// Assembles an `[channels, n, n]` feature map from per-position MVM
/// outputs, adding the per-channel bias digitally.
fn assemble_fmap(ys: &[Vec<f64>], bias: &[f64], channels: usize, n: usize) -> Tensor3 {
    let mut fmap = Tensor3::zeros(channels, n, n);
    for (pos, y) in ys.iter().enumerate() {
        for (oc, v) in y.iter().enumerate() {
            fmap.as_mut_slice()[oc * n * n + pos] = v + bias[oc];
        }
    }
    fmap
}

/// ReLU + 2×2 max pool in the digital functional module (shared with the
/// sharded runtime backend).
pub(crate) fn relu_pool2(t: &Tensor3) -> Tensor3 {
    let (c, h, w) = t.shape();
    let mut out = Tensor3::zeros(c, h / 2, w / 2);
    for ci in 0..c {
        let pooled = gramc_core::functional::pool2d(
            t.channel(ci),
            h,
            w,
            2,
            gramc_core::functional::Pooling::Max,
        );
        for (v, o) in pooled.iter().zip(out.channel_mut(ci).iter_mut()) {
            *o = v.max(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_model;
    use gramc_core::NonidealityConfig;

    #[test]
    fn analog_backend_matches_software_on_easy_task() {
        let (mut net, images, labels) = trained_model();
        let sw = net.evaluate(&images, &labels);
        assert_eq!(sw, 1.0, "software model must master the toy task");
        let mut backend = GramcLenet::new(
            net,
            Precision::Int4,
            MacroConfig { nonideal: NonidealityConfig::paper_default(), ..MacroConfig::default() },
            16,
            122,
        )
        .unwrap();
        let hw = backend.evaluate(&images, &labels).unwrap();
        assert!(hw >= 0.9, "analog accuracy {hw}");
    }

    #[test]
    fn int8_backend_runs_and_is_accurate() {
        let (net, images, labels) = trained_model();
        let mut backend =
            GramcLenet::new(net, Precision::Int8, MacroConfig::default(), 16, 123).unwrap();
        let hw = backend.evaluate(&images[..8], &labels[..8]).unwrap();
        assert!(hw >= 0.9, "INT8 analog accuracy {hw}");
    }

    #[test]
    fn float32_backend_is_rejected() {
        let (net, _, _) = trained_model();
        assert!(GramcLenet::new(net, Precision::Float32, MacroConfig::default(), 16, 0).is_err());
    }
}
