//! GRAMC execution backend for LeNet-5 (the paper's Fig. 5 pipeline).
//!
//! "The trained weights of each layer are loaded to the RRAM array by
//! write-verify circuits. The convolutional computation results are
//! transferred to the digital functional module to execute the pooling and
//! activation operations."
//!
//! Execution is **layer-serial over the whole batch**: each layer's weight
//! matrix is written into the macro group (INT4 differential or INT8
//! bit-sliced planes), every image's activations stream through it via
//! batched analog MVM, pooling/ReLU run in the digital functional module,
//! and the macros are freed for the next layer. This is how a 16-macro
//! system executes a network whose INT8 mapping would not fit resident.
//! Biases are added digitally (the crossbar computes the pure product).

use gramc_core::functional::argmax;
use gramc_core::tiling::{TileMapping, TiledOperator};
use gramc_core::{CoreError, MacroConfig, MacroGroup};
use gramc_linalg::Matrix;

use crate::layers::{im2col, im2col_rows_into};
use crate::lenet::LeNet5;
use crate::quant::Precision;
use crate::tensor::Tensor3;

/// Reusable buffers for the streaming LeNet pipeline: the per-layer drive
/// matrices and the one-image pooled feature map. Buffers are grow-only
/// ([`Matrix::reset_zeroed`]), so after the first call at a given batch
/// size the whole forward pass performs **zero per-image heap
/// allocation** — drive assembly, bias/ReLU/pooling fusion and im2col all
/// write into memory owned here.
#[derive(Debug, Default)]
pub struct LenetScratch {
    /// conv1 drive: one 25-wide patch row per output position per image.
    d1: Matrix,
    /// conv2 drive: one 150-wide patch row per output position per image.
    d2: Matrix,
    /// fc1 drive: one flattened 256-wide activation row per image.
    fc_in: Matrix,
    /// One image's pooled feature map (channel-major), reused per image.
    fmap: Vec<f64>,
}

/// LeNet-5 running on the analog macro group.
#[derive(Debug)]
pub struct GramcLenet {
    group: MacroGroup,
    model: LeNet5,
    precision: Precision,
    scratch: LenetScratch,
}

impl GramcLenet {
    /// Wraps a trained model for analog execution at the given precision.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if `precision` is
    /// [`Precision::Float32`] (use the software model directly for the
    /// float baseline).
    pub fn new(
        model: LeNet5,
        precision: Precision,
        config: MacroConfig,
        n_macros: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if precision == Precision::Float32 {
            return Err(CoreError::InvalidArgument(
                "float32 is the software baseline; run LeNet5::evaluate instead",
            ));
        }
        Ok(Self {
            group: MacroGroup::new(n_macros, config, seed),
            model,
            precision,
            scratch: LenetScratch::default(),
        })
    }

    fn mapping(&self) -> TileMapping {
        match self.precision {
            Precision::Int4 => TileMapping::FourBit,
            Precision::Int8 => TileMapping::BitSlicedInt8,
            Precision::Float32 => unreachable!("rejected in constructor"),
        }
    }

    /// A point-in-time copy of the backend's accumulated hardware counters
    /// (every analog event of every inference since construction). Diff two
    /// snapshots with [`HwSnapshot::since`](gramc_core::HwSnapshot::since)
    /// to meter one workload.
    #[cfg(feature = "telemetry")]
    pub fn hw_snapshot(&self) -> gramc_core::HwSnapshot {
        self.group.hw_snapshot()
    }

    /// Computes logits for a batch of images through the **per-image**
    /// analog pipeline: one im2col batch and one analog drive per image.
    ///
    /// This is the reference path — [`logits_matrix`](Self::logits_matrix)
    /// streams the whole dataset per layer instead and is what
    /// [`predict_batch`](Self::predict_batch) uses. With noise-free
    /// conductance reads the two are bit-identical; with read noise they
    /// differ only in when the noise is drawn (per image here, per layer
    /// there).
    ///
    /// # Errors
    ///
    /// Capacity errors if the macro group cannot hold a layer; analog-path
    /// errors propagate.
    pub fn logits_batch(&mut self, images: &[Tensor3]) -> Result<Vec<Vec<f64>>, CoreError> {
        let mapping = self.mapping();
        let group = &mut self.group;
        lenet_forward(&self.model, images, |w, batches| {
            let mut tiled = TiledOperator::load(group, w, mapping)?;
            let result: Result<Vec<_>, CoreError> =
                batches.iter().map(|xs| tiled.mvm_batch(group, xs)).collect();
            tiled.free(group)?;
            result
        })
    }

    /// Streams a whole dataset through the analog pipeline: per layer, one
    /// weight load, **one** batched analog drive covering every image, one
    /// free. Drive matrices are assembled in reusable scratch buffers
    /// ([`LenetScratch`]) with im2col fused into the assembly, so
    /// steady-state execution performs zero per-image heap allocation.
    /// Row `i` of the result holds image `i`'s logits.
    ///
    /// With noise-free conductance reads this is bit-identical to
    /// [`logits_batch`](Self::logits_batch); with read noise enabled each
    /// layer's conductances are read once for the whole dataset instead of
    /// once per image (same distribution, different draws).
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    pub fn logits_matrix(&mut self, images: &[Tensor3]) -> Result<Matrix, CoreError> {
        let mapping = self.mapping();
        let group = &mut self.group;
        lenet_forward_stream(&self.model, images, &mut self.scratch, |w, drive| {
            let mut tiled = TiledOperator::load(group, w, mapping)?;
            let result = tiled.mvm_batch_rows(group, drive);
            tiled.free(group)?;
            result
        })
    }

    /// Predicted classes for a batch (streamed pipeline).
    ///
    /// # Errors
    ///
    /// See [`logits_matrix`](Self::logits_matrix).
    pub fn predict_batch(&mut self, images: &[Tensor3]) -> Result<Vec<usize>, CoreError> {
        let logits = self.logits_matrix(images)?;
        Ok((0..logits.rows()).map(|b| argmax(logits.row(b))).collect())
    }

    /// Classification accuracy of the analog pipeline on a labelled set.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len()`.
    pub fn evaluate(&mut self, images: &[Tensor3], labels: &[usize]) -> Result<f64, CoreError> {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        if images.is_empty() {
            return Ok(0.0);
        }
        let preds = self.predict_batch(images)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / images.len() as f64)
    }
}

/// The LeNet-5 forward pipeline shared by the single-group and sharded
/// backends: im2col, feature-map assembly, digital bias add, ReLU and
/// pooling, plus the fully-connected stack. `run_layer` is the only
/// analog-specific step: load the layer's weight matrix, run one batched
/// MVM per entry of `batches` (in order), free the tiles — even when an
/// MVM fails, so a long-lived runtime doesn't leak capacity — and return
/// the raw products.
pub(crate) fn lenet_forward<E>(
    model: &LeNet5,
    images: &[Tensor3],
    mut run_layer: impl FnMut(&Matrix, &[Vec<Vec<f64>>]) -> Result<Vec<Vec<Vec<f64>>>, E>,
) -> Result<Vec<Vec<f64>>, E> {
    if images.is_empty() {
        return Ok(Vec::new());
    }
    // conv1 over all images (one im2col batch per image, one weight load).
    let batches: Vec<Vec<Vec<f64>>> = images.iter().map(im2col_batch).collect();
    let conv1 = run_layer(&model.conv1.weights, &batches)?;
    let pooled1: Vec<Tensor3> =
        conv1.iter().map(|ys| relu_pool2(&assemble_fmap(ys, &model.conv1.bias, 6, 24))).collect();
    // conv2.
    let batches: Vec<Vec<Vec<f64>>> = pooled1.iter().map(im2col_batch).collect();
    let conv2 = run_layer(&model.conv2.weights, &batches)?;
    let pooled2: Vec<Vec<f64>> = conv2
        .iter()
        .map(|ys| relu_pool2(&assemble_fmap(ys, &model.conv2.bias, 16, 8)).into_vec())
        .collect();
    // Fully-connected stack: whole batch per layer, digital bias + ReLU.
    let mut fc = |w: &Matrix, bias: &[f64], xs: Vec<Vec<f64>>, relu: bool| {
        let mut ys = run_layer(w, std::slice::from_ref(&xs))?.pop().expect("one batch in, one out");
        for y in ys.iter_mut() {
            for (yi, b) in y.iter_mut().zip(bias) {
                *yi += b;
            }
            if relu {
                for yi in y.iter_mut() {
                    *yi = yi.max(0.0);
                }
            }
        }
        Ok(ys)
    };
    let a1 = fc(&model.fc1.weights, &model.fc1.bias, pooled2, true)?;
    let a2 = fc(&model.fc2.weights, &model.fc2.bias, a1, true)?;
    fc(&model.fc3.weights, &model.fc3.bias, a2, false)
}

/// The fused streaming LeNet-5 forward shared by both backends: per layer,
/// `run_layer` receives the weight matrix and **one** drive matrix covering
/// every image (row per analog input vector) and returns the raw products.
/// im2col is fused into drive assembly, bias/ReLU/2×2-max-pool run directly
/// on the product rows, and every intermediate lives in `scratch` — no
/// per-image allocation after the buffers reach steady-state size.
///
/// The digital steps replicate the per-image path's arithmetic exactly
/// (same fold orders, same `v + bias` before the max fold), so with
/// noise-free analog reads the streamed logits are bit-identical to
/// [`lenet_forward`]'s.
pub(crate) fn lenet_forward_stream<E>(
    model: &LeNet5,
    images: &[Tensor3],
    scratch: &mut LenetScratch,
    mut run_layer: impl FnMut(&Matrix, &Matrix) -> Result<Matrix, E>,
) -> Result<Matrix, E> {
    let n = images.len();
    if n == 0 {
        return Ok(Matrix::zeros(0, model.fc3.weights.rows()));
    }
    // conv1: 28×28 inputs, 5×5 kernel → 24×24 = 576 positions per image.
    scratch.d1.reset_zeroed(n * 576, 25);
    for (i, img) in images.iter().enumerate() {
        im2col_rows_into(img.as_slice(), 1, 28, 28, 5, &mut scratch.d1, i * 576);
    }
    let out1 = run_layer(&model.conv1.weights, &scratch.d1)?;
    // Fused bias + ReLU + pool from the product rows into a (6,12,12)
    // pooled map, then im2col into the conv2 drive (8×8 = 64 positions).
    scratch.d2.reset_zeroed(n * 64, 150);
    scratch.fmap.clear();
    scratch.fmap.resize(6 * 12 * 12, 0.0);
    for i in 0..n {
        pool_rows_into_fmap(&out1, i * 576, 24, &model.conv1.bias, &mut scratch.fmap);
        im2col_rows_into(&scratch.fmap, 6, 12, 12, 5, &mut scratch.d2, i * 64);
    }
    let out2 = run_layer(&model.conv2.weights, &scratch.d2)?;
    // conv2 products pool to (16,4,4) = 256 features, one fc drive row per
    // image.
    scratch.fc_in.reset_zeroed(n, 256);
    for i in 0..n {
        pool_rows_into_fmap(&out2, i * 64, 8, &model.conv2.bias, scratch.fc_in.row_mut(i));
    }
    let mut a1 = run_layer(&model.fc1.weights, &scratch.fc_in)?;
    bias_relu_rows(&mut a1, &model.fc1.bias, true);
    let mut a2 = run_layer(&model.fc2.weights, &a1)?;
    bias_relu_rows(&mut a2, &model.fc2.bias, true);
    let mut logits = run_layer(&model.fc3.weights, &a2)?;
    bias_relu_rows(&mut logits, &model.fc3.bias, false);
    Ok(logits)
}

/// Fused digital functional step for one image's conv products: rows
/// `row0..row0 + n·n` of `out` hold the `n×n` output map (position-major,
/// channel per column); adds the per-channel bias, 2×2 max-pools and
/// applies ReLU, writing the pooled `(channels, n/2, n/2)` map
/// channel-major into `dst`. The fold order matches
/// `assemble_fmap` + [`relu_pool2`] element-for-element so the results are
/// bit-identical.
fn pool_rows_into_fmap(out: &Matrix, row0: usize, n: usize, bias: &[f64], dst: &mut [f64]) {
    let half = n / 2;
    for (oc, &b) in bias.iter().enumerate() {
        for oy in 0..half {
            for ox in 0..half {
                let mut acc = f64::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let pos = (oy * 2 + dy) * n + ox * 2 + dx;
                        acc = acc.max(out[(row0 + pos, oc)] + b);
                    }
                }
                dst[(oc * half + oy) * half + ox] = acc.max(0.0);
            }
        }
    }
}

/// Digital bias add (and optional ReLU) over every row of a
/// fully-connected product matrix, matching the per-image path's
/// element order.
fn bias_relu_rows(m: &mut Matrix, bias: &[f64], relu: bool) {
    for b in 0..m.rows() {
        let row = m.row_mut(b);
        for (v, bi) in row.iter_mut().zip(bias) {
            *v += bi;
        }
        if relu {
            for v in row.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }
}

/// One im2col batch (5×5 windows): one input vector per output position.
fn im2col_batch(t: &Tensor3) -> Vec<Vec<f64>> {
    let cols = im2col(t, 5);
    (0..cols.cols()).map(|j| cols.col(j)).collect()
}

/// Assembles an `[channels, n, n]` feature map from per-position MVM
/// outputs, adding the per-channel bias digitally.
fn assemble_fmap(ys: &[Vec<f64>], bias: &[f64], channels: usize, n: usize) -> Tensor3 {
    let mut fmap = Tensor3::zeros(channels, n, n);
    for (pos, y) in ys.iter().enumerate() {
        for (oc, v) in y.iter().enumerate() {
            fmap.as_mut_slice()[oc * n * n + pos] = v + bias[oc];
        }
    }
    fmap
}

/// ReLU + 2×2 max pool in the digital functional module (shared with the
/// sharded runtime backend).
pub(crate) fn relu_pool2(t: &Tensor3) -> Tensor3 {
    let (c, h, w) = t.shape();
    let mut out = Tensor3::zeros(c, h / 2, w / 2);
    for ci in 0..c {
        let pooled = gramc_core::functional::pool2d(
            t.channel(ci),
            h,
            w,
            2,
            gramc_core::functional::Pooling::Max,
        );
        for (v, o) in pooled.iter().zip(out.channel_mut(ci).iter_mut()) {
            *o = v.max(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_model;
    use gramc_core::NonidealityConfig;

    #[test]
    fn analog_backend_matches_software_on_easy_task() {
        let (mut net, images, labels) = trained_model();
        let sw = net.evaluate(&images, &labels);
        assert_eq!(sw, 1.0, "software model must master the toy task");
        let mut backend = GramcLenet::new(
            net,
            Precision::Int4,
            MacroConfig { nonideal: NonidealityConfig::paper_default(), ..MacroConfig::default() },
            16,
            122,
        )
        .unwrap();
        let hw = backend.evaluate(&images, &labels).unwrap();
        assert!(hw >= 0.9, "analog accuracy {hw}");
    }

    #[test]
    fn int8_backend_runs_and_is_accurate() {
        let (net, images, labels) = trained_model();
        let mut backend =
            GramcLenet::new(net, Precision::Int8, MacroConfig::default(), 16, 123).unwrap();
        let hw = backend.evaluate(&images[..8], &labels[..8]).unwrap();
        assert!(hw >= 0.9, "INT8 analog accuracy {hw}");
    }

    #[test]
    fn float32_backend_is_rejected() {
        let (net, _, _) = trained_model();
        assert!(GramcLenet::new(net, Precision::Float32, MacroConfig::default(), 16, 0).is_err());
    }

    /// With noise-free (quantization-only) analog reads, the streamed
    /// whole-dataset pipeline must reproduce the per-image pipeline bit
    /// for bit — the fused bias/ReLU/pool and batched drives change only
    /// where work happens, never the arithmetic.
    #[test]
    fn streamed_logits_are_bit_identical_to_per_image_path() {
        let (net, images, _) = trained_model();
        let quiet = MacroConfig {
            nonideal: NonidealityConfig::quantization_only(4),
            ..MacroConfig::default()
        };
        for precision in [Precision::Int4, Precision::Int8] {
            let mut backend =
                GramcLenet::new(net.clone(), precision, quiet.clone(), 16, 122).unwrap();
            let sample = &images[..5];
            let per_image = backend.logits_batch(sample).unwrap();
            let streamed = backend.logits_matrix(sample).unwrap();
            assert_eq!(streamed.shape(), (5, 10));
            for (b, y) in per_image.iter().enumerate() {
                for (j, v) in y.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        streamed[(b, j)].to_bits(),
                        "{precision:?} image {b} logit {j}: {v} vs {}",
                        streamed[(b, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_empty_batch_yields_empty_logits() {
        let (net, _, _) = trained_model();
        let mut backend =
            GramcLenet::new(net, Precision::Int4, MacroConfig::default(), 16, 122).unwrap();
        let logits = backend.logits_matrix(&[]).unwrap();
        assert_eq!(logits.shape(), (0, 10));
    }
}
