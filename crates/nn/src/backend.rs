//! GRAMC execution backend for LeNet-5 (the paper's Fig. 5 pipeline).
//!
//! "The trained weights of each layer are loaded to the RRAM array by
//! write-verify circuits. The convolutional computation results are
//! transferred to the digital functional module to execute the pooling and
//! activation operations."
//!
//! Execution is **layer-serial over the whole batch**: each layer's weight
//! matrix is written into the macro group (INT4 differential or INT8
//! bit-sliced planes), every image's activations stream through it via
//! batched analog MVM, pooling/ReLU run in the digital functional module,
//! and the macros are freed for the next layer. This is how a 16-macro
//! system executes a network whose INT8 mapping would not fit resident.
//! Biases are added digitally (the crossbar computes the pure product).

use gramc_core::functional::argmax;
use gramc_core::tiling::{TileMapping, TiledOperator};
use gramc_core::{CoreError, MacroConfig, MacroGroup};
use gramc_linalg::Matrix;

use crate::layers::im2col;
use crate::lenet::LeNet5;
use crate::quant::Precision;
use crate::tensor::Tensor3;

/// LeNet-5 running on the analog macro group.
#[derive(Debug)]
pub struct GramcLenet {
    group: MacroGroup,
    model: LeNet5,
    precision: Precision,
}

impl GramcLenet {
    /// Wraps a trained model for analog execution at the given precision.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidArgument`] if `precision` is
    /// [`Precision::Float32`] (use the software model directly for the
    /// float baseline).
    pub fn new(
        model: LeNet5,
        precision: Precision,
        config: MacroConfig,
        n_macros: usize,
        seed: u64,
    ) -> Result<Self, CoreError> {
        if precision == Precision::Float32 {
            return Err(CoreError::InvalidArgument(
                "float32 is the software baseline; run LeNet5::evaluate instead",
            ));
        }
        Ok(Self { group: MacroGroup::new(n_macros, config, seed), model, precision })
    }

    fn mapping(&self) -> TileMapping {
        match self.precision {
            Precision::Int4 => TileMapping::FourBit,
            Precision::Int8 => TileMapping::BitSlicedInt8,
            Precision::Float32 => unreachable!("rejected in constructor"),
        }
    }

    /// Runs one layer (as a weight matrix + bias) over a batch of input
    /// vectors: load → batched analog MVM → digital bias add → free.
    fn layer_batch(
        &mut self,
        weights: &Matrix,
        bias: &[f64],
        xs: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let mapping = self.mapping();
        let mut tiled = TiledOperator::load(&mut self.group, weights, mapping)?;
        let result = tiled.mvm_batch(&mut self.group, xs);
        tiled.free(&mut self.group)?;
        let mut ys = result?;
        for y in ys.iter_mut() {
            for (yi, b) in y.iter_mut().zip(bias) {
                *yi += b;
            }
        }
        Ok(ys)
    }

    /// Computes logits for a batch of images through the analog pipeline.
    ///
    /// # Errors
    ///
    /// Capacity errors if the macro group cannot hold a layer; analog-path
    /// errors propagate.
    pub fn logits_batch(&mut self, images: &[Tensor3]) -> Result<Vec<Vec<f64>>, CoreError> {
        if images.is_empty() {
            return Ok(Vec::new());
        }
        // conv1 over all images (one im2col batch per image).
        let w1 = self.model.conv1.weights.clone();
        let b1 = self.model.conv1.bias.clone();
        let mut pooled1: Vec<Tensor3> = Vec::with_capacity(images.len());
        {
            let mapping = self.mapping();
            let mut tiled = TiledOperator::load(&mut self.group, &w1, mapping)?;
            for img in images {
                let cols = im2col(img, 5);
                let xs: Vec<Vec<f64>> = (0..cols.cols()).map(|j| cols.col(j)).collect();
                let ys = tiled.mvm_batch(&mut self.group, &xs)?;
                // Assemble [6,24,24], add bias, ReLU + pool digitally.
                let mut fmap = Tensor3::zeros(6, 24, 24);
                for (pos, y) in ys.iter().enumerate() {
                    for (oc, v) in y.iter().enumerate() {
                        fmap.as_mut_slice()[oc * 576 + pos] = v + b1[oc];
                    }
                }
                pooled1.push(relu_pool2(&fmap));
            }
            tiled.free(&mut self.group)?;
        }
        // conv2.
        let w2 = self.model.conv2.weights.clone();
        let b2 = self.model.conv2.bias.clone();
        let mut pooled2: Vec<Vec<f64>> = Vec::with_capacity(images.len());
        {
            let mapping = self.mapping();
            let mut tiled = TiledOperator::load(&mut self.group, &w2, mapping)?;
            for p1 in &pooled1 {
                let cols = im2col(p1, 5);
                let xs: Vec<Vec<f64>> = (0..cols.cols()).map(|j| cols.col(j)).collect();
                let ys = tiled.mvm_batch(&mut self.group, &xs)?;
                let mut fmap = Tensor3::zeros(16, 8, 8);
                for (pos, y) in ys.iter().enumerate() {
                    for (oc, v) in y.iter().enumerate() {
                        fmap.as_mut_slice()[oc * 64 + pos] = v + b2[oc];
                    }
                }
                pooled2.push(relu_pool2(&fmap).into_vec());
            }
            tiled.free(&mut self.group)?;
        }
        // Fully-connected stack: whole batch per layer.
        let a1 = self.layer_batch(
            &self.model.fc1.weights.clone(),
            &self.model.fc1.bias.clone(),
            &pooled2,
        )?;
        let a1: Vec<Vec<f64>> = a1
            .into_iter()
            .map(|mut v| {
                for x in v.iter_mut() {
                    *x = x.max(0.0);
                }
                v
            })
            .collect();
        let a2 =
            self.layer_batch(&self.model.fc2.weights.clone(), &self.model.fc2.bias.clone(), &a1)?;
        let a2: Vec<Vec<f64>> = a2
            .into_iter()
            .map(|mut v| {
                for x in v.iter_mut() {
                    *x = x.max(0.0);
                }
                v
            })
            .collect();
        self.layer_batch(&self.model.fc3.weights.clone(), &self.model.fc3.bias.clone(), &a2)
    }

    /// Predicted classes for a batch.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    pub fn predict_batch(&mut self, images: &[Tensor3]) -> Result<Vec<usize>, CoreError> {
        Ok(self.logits_batch(images)?.iter().map(|l| argmax(l)).collect())
    }

    /// Classification accuracy of the analog pipeline on a labelled set.
    ///
    /// # Errors
    ///
    /// See [`logits_batch`](Self::logits_batch).
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len()`.
    pub fn evaluate(&mut self, images: &[Tensor3], labels: &[usize]) -> Result<f64, CoreError> {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        if images.is_empty() {
            return Ok(0.0);
        }
        let preds = self.predict_batch(images)?;
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        Ok(correct as f64 / images.len() as f64)
    }
}

/// ReLU + 2×2 max pool in the digital functional module.
fn relu_pool2(t: &Tensor3) -> Tensor3 {
    let (c, h, w) = t.shape();
    let mut out = Tensor3::zeros(c, h / 2, w / 2);
    for ci in 0..c {
        let pooled = gramc_core::functional::pool2d(
            t.channel(ci),
            h,
            w,
            2,
            gramc_core::functional::Pooling::Max,
        );
        for (v, o) in pooled.iter().zip(out.channel_mut(ci).iter_mut()) {
            *o = v.max(0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_core::NonidealityConfig;
    use gramc_linalg::random::seeded_rng;

    fn tiny_images(n: usize, seed: u64) -> (Vec<Tensor3>, Vec<usize>) {
        let mut rng = seeded_rng(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let cy = if label == 0 { 9.0 } else { 19.0 };
            let mut t = Tensor3::zeros(1, 28, 28);
            for y in 0..28 {
                for x in 0..28 {
                    let dy = y as f64 - cy;
                    let dx = x as f64 - 14.0;
                    let v = (-(dy * dy + dx * dx) / 16.0).exp()
                        + 0.02 * gramc_linalg::random::standard_normal(&mut rng);
                    t.set(0, y, x, v.clamp(0.0, 1.0));
                }
            }
            images.push(t);
            labels.push(label);
        }
        (images, labels)
    }

    fn trained_model() -> (LeNet5, Vec<Tensor3>, Vec<usize>) {
        let mut rng = seeded_rng(120);
        let mut net = LeNet5::new(&mut rng);
        let (images, labels) = tiny_images(16, 121);
        for _ in 0..12 {
            net.train_epoch(&images, &labels, 0.02, 0.9);
        }
        (net, images, labels)
    }

    #[test]
    fn analog_backend_matches_software_on_easy_task() {
        let (mut net, images, labels) = trained_model();
        let sw = net.evaluate(&images, &labels);
        assert_eq!(sw, 1.0, "software model must master the toy task");
        let mut backend = GramcLenet::new(
            net,
            Precision::Int4,
            MacroConfig { nonideal: NonidealityConfig::paper_default(), ..MacroConfig::default() },
            16,
            122,
        )
        .unwrap();
        let hw = backend.evaluate(&images, &labels).unwrap();
        assert!(hw >= 0.9, "analog accuracy {hw}");
    }

    #[test]
    fn int8_backend_runs_and_is_accurate() {
        let (net, images, labels) = trained_model();
        let mut backend =
            GramcLenet::new(net, Precision::Int8, MacroConfig::default(), 16, 123).unwrap();
        let hw = backend.evaluate(&images[..8], &labels[..8]).unwrap();
        assert!(hw >= 0.9, "INT8 analog accuracy {hw}");
    }

    #[test]
    fn float32_backend_is_rejected() {
        let (net, _, _) = trained_model();
        assert!(GramcLenet::new(net, Precision::Float32, MacroConfig::default(), 16, 0).is_err());
    }
}
