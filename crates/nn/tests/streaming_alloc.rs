//! Steady-state allocation discipline of the streamed LeNet pipeline.
//!
//! The streaming path promises **zero per-image heap allocation** once its
//! scratch buffers reach steady state: drive assembly, im2col, pooling and
//! activation all reuse memory, and the per-call allocations (layer loads,
//! batched MVM outputs) are independent of how many images flow through.
//! A counting global allocator makes that claim testable: doubling the
//! batch size must not change the number of allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use gramc_core::{MacroConfig, NonidealityConfig};
use gramc_linalg::random::seeded_rng;
use gramc_nn::{GramcLenet, LeNet5, Precision, Tensor3};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counted<T>(f: impl FnOnce() -> T) -> (T, usize) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let out = f();
    COUNTING.store(false, Ordering::SeqCst);
    (out, ALLOCS.load(Ordering::SeqCst))
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor3> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| {
            let data = (0..28 * 28)
                .map(|_| gramc_linalg::random::standard_normal(&mut rng).abs().min(1.0))
                .collect();
            Tensor3::from_vec(1, 28, 28, data)
        })
        .collect()
}

#[test]
fn streamed_allocation_count_does_not_scale_with_batch_size() {
    // Quantization-only non-idealities: no RNG draws, so both counted runs
    // execute the exact same code path.
    let config =
        MacroConfig { nonideal: NonidealityConfig::quantization_only(4), ..MacroConfig::default() };
    let model = LeNet5::new(&mut seeded_rng(7));
    let mut backend = GramcLenet::new(model, Precision::Int4, config, 16, 11).unwrap();
    let images = random_images(8, 13);

    // Warm-up sizes the grow-only scratch buffers for the largest batch.
    backend.logits_matrix(&images).unwrap();
    backend.logits_matrix(&images[..4]).unwrap();

    // Serial thread budget keeps the parallel fan-out from spawning (and
    // allocating for) worker threads on multi-core machines.
    let ((), c4) = counted(|| {
        gramc_linalg::parallel::with_thread_cap(1, || {
            backend.logits_matrix(&images[..4]).unwrap();
        })
    });
    let ((), c8) = counted(|| {
        gramc_linalg::parallel::with_thread_cap(1, || {
            backend.logits_matrix(&images).unwrap();
        })
    });

    assert!(c4 > 0, "sanity: the pipeline does allocate per call");
    // Twice the images may not cost more allocations (small slack covers
    // amortized growth of long-lived registries).
    assert!(
        c8 <= c4 + 16,
        "allocation count scales with batch size: {c4} allocs for 4 images, {c8} for 8"
    );
}

/// The hardware counters meter every analog event of the stream while
/// costing nothing on the hot path: two identical counted runs must
/// advance the counters by the same (nonzero) delta and spend exactly the
/// same number of heap allocations — relaxed atomic increments, no boxing,
/// no logging.
#[cfg(feature = "telemetry")]
#[test]
fn telemetry_meters_the_stream_without_allocating() {
    let config =
        MacroConfig { nonideal: NonidealityConfig::quantization_only(4), ..MacroConfig::default() };
    let model = LeNet5::new(&mut seeded_rng(7));
    let mut backend = GramcLenet::new(model, Precision::Int4, config, 16, 11).unwrap();
    let images = random_images(4, 29);
    backend.logits_matrix(&images).unwrap(); // steady-state the scratch

    let before = backend.hw_snapshot();
    let ((), c_a) = counted(|| {
        gramc_linalg::parallel::with_thread_cap(1, || {
            backend.logits_matrix(&images).unwrap();
        })
    });
    let mid = backend.hw_snapshot();
    let ((), c_b) = counted(|| {
        gramc_linalg::parallel::with_thread_cap(1, || {
            backend.logits_matrix(&images).unwrap();
        })
    });
    let after = backend.hw_snapshot();

    let (d1, d2) = (mid.since(&before), after.since(&mid));
    assert!(d1.dac_drives > 0 && d1.adc_conversions > 0, "the stream was metered");
    assert_eq!(d1, d2, "identical runs must meter identically");
    assert_eq!(c_a, c_b, "metering must not add a single allocation");
}
