//! Analog-vs-digital scaling (EXPERIMENTS.md E8): measured MNA solve cost of
//! the INV circuit (the *simulation* cost) against the measured digital LU,
//! alongside the analytical hardware cost model.
//!
//! ```sh
//! cargo bench -p gramc-bench --bench scaling
//! ```

use gramc_bench::timing::Reporter;
use gramc_circuit::{dc_solve, topology, OpampModel};
use gramc_linalg::{lu, random, Matrix};

fn split(a: &Matrix, unit: f64) -> (Matrix, Matrix) {
    let floor = 1e-6;
    (
        a.map(|v| if v > 0.0 { v * unit + floor } else { floor }),
        a.map(|v| if v < 0.0 { -v * unit + floor } else { floor }),
    )
}

fn main() {
    let mut r = Reporter::new();
    for n in [8usize, 16, 32, 64] {
        let mut rng = random::seeded_rng(30);
        let a = random::spd_with_condition(&mut rng, n, 5.0);
        let b: Vec<f64> = random::normal_vector(&mut rng, n);
        r.bench(&format!("digital_lu_{n}"), || lu::solve(&a, &b).unwrap());
        let (gp, gn) = split(&a, 50e-6);
        let i_in: Vec<f64> = b.iter().map(|bi| -50e-6 * bi * 0.1).collect();
        r.bench(&format!("inv_circuit_mna_{n}"), || {
            let t = topology::build_inv(&gp, &gn, &i_in, OpampModel::with_gain(1e4)).unwrap();
            dc_solve(&t.circuit).unwrap()
        });
    }
}
