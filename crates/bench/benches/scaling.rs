//! Analog-vs-digital scaling (EXPERIMENTS.md E8): measured MNA solve cost of
//! the INV circuit (the *simulation* cost) against the measured digital LU,
//! alongside the analytical hardware cost model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramc_circuit::{dc_solve, topology, OpampModel};
use gramc_linalg::{lu, random, Matrix};
use std::time::Duration;

fn split(a: &Matrix, unit: f64) -> (Matrix, Matrix) {
    let floor = 1e-6;
    (
        a.map(|v| if v > 0.0 { v * unit + floor } else { floor }),
        a.map(|v| if v < 0.0 { -v * unit + floor } else { floor }),
    )
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [8usize, 16, 32, 64] {
        let mut rng = random::seeded_rng(30);
        let a = random::spd_with_condition(&mut rng, n, 5.0);
        let b: Vec<f64> = random::normal_vector(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("digital_lu", n), &n, |bch, _| {
            bch.iter(|| lu::solve(&a, &b).unwrap());
        });
        let (gp, gn) = split(&a, 50e-6);
        let i_in: Vec<f64> = b.iter().map(|bi| -50e-6 * bi * 0.1).collect();
        group.bench_with_input(BenchmarkId::new("inv_circuit_mna", n), &n, |bch, _| {
            bch.iter(|| {
                let t = topology::build_inv(&gp, &gn, &i_in, OpampModel::with_gain(1e4)).unwrap();
                dc_solve(&t.circuit).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
