//! Timing analog LeNet-5 inference (Fig. 5's pipeline): images per second
//! through the INT4 and INT8 paths.

use criterion::{criterion_group, criterion_main, Criterion};
use gramc_core::MacroConfig;
use gramc_data::DigitsDataset;
use gramc_linalg::random::seeded_rng;
use gramc_nn::{GramcLenet, LeNet5, Precision, Tensor3};
use std::time::Duration;

fn bench_lenet(c: &mut Criterion) {
    let mut rng = seeded_rng(20);
    let ds = DigitsDataset::generate(&mut rng, 64, 16);
    let train: Vec<Tensor3> =
        ds.train.iter().map(|d| Tensor3::from_vec(1, 28, 28, d.pixels.clone())).collect();
    let labels: Vec<usize> = ds.train.iter().map(|d| d.label).collect();
    let mut net = LeNet5::new(&mut rng);
    for _ in 0..2 {
        net.train_epoch(&train, &labels, 0.002, 0.9);
    }
    let batch: Vec<Tensor3> = train[..8].to_vec();

    let mut group = c.benchmark_group("lenet");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    group.bench_function("software_forward_8img", |b| {
        b.iter(|| {
            for img in &batch {
                let _ = net.forward(img);
            }
        });
    });
    let mut int4 =
        GramcLenet::new(net.clone(), Precision::Int4, MacroConfig::default(), 16, 21).unwrap();
    group.bench_function("analog_int4_8img", |b| {
        b.iter(|| int4.logits_batch(&batch).unwrap());
    });
    let mut int8 =
        GramcLenet::new(net.clone(), Precision::Int8, MacroConfig::default(), 16, 22).unwrap();
    group.bench_function("analog_int8_8img", |b| {
        b.iter(|| int8.logits_batch(&batch).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_lenet);
criterion_main!(benches);
