//! Timing analog LeNet-5 inference (Fig. 5's pipeline): images per second
//! through the INT4 and INT8 paths.
//!
//! ```sh
//! cargo bench -p gramc-bench --bench lenet
//! ```

use gramc_bench::timing::Reporter;
use gramc_core::MacroConfig;
use gramc_data::DigitsDataset;
use gramc_linalg::random::seeded_rng;
use gramc_nn::{GramcLenet, LeNet5, Precision, Tensor3};

fn main() {
    let mut rng = seeded_rng(20);
    let ds = DigitsDataset::generate(&mut rng, 64, 16);
    let train: Vec<Tensor3> =
        ds.train.iter().map(|d| Tensor3::from_vec(1, 28, 28, d.pixels.clone())).collect();
    let labels: Vec<usize> = ds.train.iter().map(|d| d.label).collect();
    let mut net = LeNet5::new(&mut rng);
    for _ in 0..2 {
        net.train_epoch(&train, &labels, 0.002, 0.9);
    }
    let batch: Vec<Tensor3> = train[..8].to_vec();

    let mut r = Reporter::new();
    r.bench("software_forward_8img", || {
        for img in &batch {
            let _ = net.forward(img);
        }
    });
    let mut int4 =
        GramcLenet::new(net.clone(), Precision::Int4, MacroConfig::default(), 16, 21).unwrap();
    r.bench("analog_int4_8img", || int4.logits_batch(&batch).unwrap());
    let mut int8 =
        GramcLenet::new(net.clone(), Precision::Int8, MacroConfig::default(), 16, 22).unwrap();
    r.bench("analog_int8_8img", || int8.logits_batch(&batch).unwrap());
}
