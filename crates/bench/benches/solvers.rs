//! Timing the four analog computing modes (the red path of Fig. 3) at
//! several array sizes — the simulation cost behind Fig. 4.
//!
//! ```sh
//! cargo bench -p gramc-bench --bench solvers
//! ```

use gramc_bench::timing::Reporter;
use gramc_core::{MacroConfig, MacroGroup};
use gramc_data::spiked_gram;
use gramc_linalg::random;

fn main() {
    let mut r = Reporter::new();
    for n in [16usize, 32, 64] {
        let mut rng = random::seeded_rng(10);
        let a = random::wishart(&mut rng, n, 16 * n);
        let gram = spiked_gram(&mut rng, n, 2 * n, 3.0);
        let x = random::normal_vector(&mut rng, n);
        let config = MacroConfig { array_rows: n, array_cols: n, ..MacroConfig::default() };
        let mut group = MacroGroup::new(4, config, 11);
        let op = group.load_matrix(&a).unwrap();
        let op_g = group.load_matrix(&gram).unwrap();

        r.bench(&format!("mvm_{n}"), || group.mvm(op, &x).unwrap());
        r.bench(&format!("inv_mna_{n}"), || group.solve_inv(op, &x).unwrap());
        r.bench(&format!("egv_{n}"), || group.solve_egv(op_g).unwrap());
    }
}
