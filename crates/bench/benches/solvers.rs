//! Timing the four analog computing modes (the red path of Fig. 3) at
//! several array sizes — the simulation cost behind Fig. 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramc_core::{MacroConfig, MacroGroup};
use gramc_data::spiked_gram;
use gramc_linalg::random;
use std::time::Duration;

fn bench_modes(c: &mut Criterion) {
    let mut group_b = c.benchmark_group("analog_modes");
    group_b.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [16usize, 32, 64] {
        let mut rng = random::seeded_rng(10);
        let a = random::wishart(&mut rng, n, 16 * n);
        let gram = spiked_gram(&mut rng, n, 2 * n, 3.0);
        let x = random::normal_vector(&mut rng, n);
        let config = MacroConfig { array_rows: n, array_cols: n, ..MacroConfig::default() };
        let mut group = MacroGroup::new(4, config, 11);
        let op = group.load_matrix(&a).unwrap();
        let op_g = group.load_matrix(&gram).unwrap();

        group_b.bench_with_input(BenchmarkId::new("mvm", n), &n, |b, _| {
            b.iter(|| group.mvm(op, &x).unwrap());
        });
        group_b.bench_with_input(BenchmarkId::new("inv_mna", n), &n, |b, _| {
            b.iter(|| group.solve_inv(op, &x).unwrap());
        });
        group_b.bench_with_input(BenchmarkId::new("egv", n), &n, |b, _| {
            b.iter(|| group.solve_egv(op_g).unwrap());
        });
    }
    group_b.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
