//! Timing the digital baseline kernels (the "numerical results from Python"
//! stand-ins) at the paper's 128 dimension.
//!
//! ```sh
//! cargo bench -p gramc-bench --bench linalg_kernels
//! ```

use gramc_bench::timing::Reporter;
use gramc_linalg::{lu, pseudoinverse, random, SymmetricEigen};

fn main() {
    let mut rng = random::seeded_rng(40);
    let a = random::wishart(&mut rng, 128, 256);
    let tall = random::gaussian_matrix(&mut rng, 128, 6);
    let b = random::normal_vector(&mut rng, 128);

    let mut r = Reporter::new();
    r.bench("lu_solve_128", || lu::solve(&a, &b).unwrap());
    r.bench("inverse_128", || lu::inverse(&a).unwrap());
    r.bench("pinv_128x6", || pseudoinverse(&tall).unwrap());
    r.bench("eigen_128", || SymmetricEigen::new(&a).unwrap());
}
