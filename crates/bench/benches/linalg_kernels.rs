//! Timing the digital baseline kernels (the "numerical results from Python"
//! stand-ins) at the paper's 128 dimension.

use criterion::{criterion_group, criterion_main, Criterion};
use gramc_linalg::{lu, pseudoinverse, random, SymmetricEigen};
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg_128");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut rng = random::seeded_rng(40);
    let a = random::wishart(&mut rng, 128, 256);
    let tall = random::gaussian_matrix(&mut rng, 128, 6);
    let b = random::normal_vector(&mut rng, 128);

    group.bench_function("lu_solve_128", |bch| {
        bch.iter(|| lu::solve(&a, &b).unwrap());
    });
    group.bench_function("inverse_128", |bch| {
        bch.iter(|| lu::inverse(&a).unwrap());
    });
    group.bench_function("pinv_128x6", |bch| {
        bch.iter(|| pseudoinverse(&tall).unwrap());
    });
    group.bench_function("eigen_128", |bch| {
        bch.iter(|| SymmetricEigen::new(&a).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
