//! Timing the write-verify machinery (the blue path of Fig. 3): per-cell
//! program-and-verify and the Fig. 1 staircase sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gramc_array::{set_staircase, WriteVerifyController};
use gramc_device::{CellNoise, DeviceParams, Nmos, OneTOneR};
use gramc_linalg::random::seeded_rng;
use std::time::Duration;

fn bench_program_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("write_verify");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let wv = WriteVerifyController::paper_default();
    for target in [3usize, 8, 15] {
        group.bench_with_input(BenchmarkId::new("program_cell_level", target), &target, |b, &t| {
            let mut rng = seeded_rng(1);
            b.iter(|| {
                let mut cell =
                    OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
                wv.program_cell(&mut cell, t, &mut rng).unwrap()
            });
        });
    }
    group.bench_function("fig1b_set_staircase_30p", |b| {
        let wv = WriteVerifyController::paper_default();
        let mut rng = seeded_rng(2);
        b.iter(|| {
            let mut cell =
                OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
            set_staircase(&mut cell, wv.config(), wv.quantizer(), 0.02, 0, 30, &mut rng)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_program_cell);
criterion_main!(benches);
