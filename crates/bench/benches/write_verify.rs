//! Timing the write-verify machinery (the blue path of Fig. 3): per-cell
//! program-and-verify and the Fig. 1 staircase sweeps.
//!
//! ```sh
//! cargo bench -p gramc-bench --bench write_verify
//! ```

use gramc_array::{set_staircase, WriteVerifyController};
use gramc_bench::timing::Reporter;
use gramc_device::{CellNoise, DeviceParams, Nmos, OneTOneR};
use gramc_linalg::random::seeded_rng;

fn main() {
    let mut r = Reporter::new();
    let wv = WriteVerifyController::paper_default();
    for target in [3usize, 8, 15] {
        let mut rng = seeded_rng(1);
        r.bench(&format!("program_cell_level_{target}"), || {
            let mut cell =
                OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
            wv.program_cell(&mut cell, target, &mut rng).unwrap()
        });
    }
    let mut rng = seeded_rng(2);
    r.bench("fig1b_set_staircase_30p", || {
        let mut cell =
            OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
        set_staircase(&mut cell, wv.config(), wv.quantizer(), 0.02, 0, 30, &mut rng)
    });
}
