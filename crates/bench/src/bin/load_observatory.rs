//! Load observatory: sweeps open-loop arrival rates over a live
//! [`RuntimeServer`] to locate the saturation knee of the serving engine —
//! the offered rate past which sustained throughput stops tracking the
//! arrival schedule and latency/rejections take off.
//!
//! Each sweep point gets a **fresh** runtime + server (histograms, journal
//! and queue state never bleed between rates). The sweep is anchored to a
//! closed-loop capacity probe on this host, so the same command brackets
//! the knee on a laptop and a 1-core CI runner alike.
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin load_observatory -- \
//!     [--shards N] [--clients N] [--duration-ms MS] [--queue-limit N] \
//!     [--rates r1,r2,...] [--out report.json]
//! ```
//!
//! With `--out`, the sweep is also written as a `BENCH_kernels.json`-style
//! report (one sample per point, latency/throughput/rejection meta rows).

use std::sync::Arc;
use std::time::Duration;

use gramc_bench::loadgen::{self, LoadReport};
use gramc_bench::timing::{to_json, Sample};
use gramc_core::tiling::TileMapping;
use gramc_core::MacroConfig;
use gramc_linalg::random;
use gramc_runtime::{OperatorHandle, Placement, Runtime, RuntimeServer};

/// One measurement on a fresh serving deployment: builds the runtime,
/// starts the server, loads a seeded 64×64 operator, runs `f`, shuts down.
fn serve_point(
    shards: usize,
    queue_limit: usize,
    f: impl FnOnce(&Arc<Runtime>, OperatorHandle, &[f64]) -> LoadReport,
) -> LoadReport {
    let rt = Arc::new(
        Runtime::new(shards, 2, MacroConfig::small_ideal(64), 6).with_queue_limit(queue_limit),
    );
    let server = RuntimeServer::start(rt.clone());
    let mut rng = random::seeded_rng(23);
    let a = random::gaussian_matrix(&mut rng, 64, 64);
    let (op, loaded) =
        rt.submit_load(&a, TileMapping::FourBit, Placement::LeastLoaded).expect("load operator");
    loaded.wait().expect("load completes");
    let x = random::normal_vector(&mut rng, 64);
    let report = f(&rt, op, &x);
    server.shutdown();
    report
}

fn main() {
    let mut shards = 2usize;
    let mut clients = 4usize;
    let mut duration = Duration::from_millis(400);
    let mut queue_limit = 64usize;
    let mut rates: Option<Vec<f64>> = None;
    let mut out: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |what: &str| it.next().unwrap_or_else(|| panic!("{arg} needs {what}"));
        match arg.as_str() {
            "--shards" => shards = next("a count").parse().expect("shard count"),
            "--clients" => clients = next("a count").parse().expect("client count"),
            "--duration-ms" => {
                duration = Duration::from_millis(next("milliseconds").parse().expect("ms"));
            }
            "--queue-limit" => queue_limit = next("a bound").parse().expect("queue limit"),
            "--rates" => {
                rates = Some(
                    next("a comma list")
                        .split(',')
                        .map(|r| r.parse().expect("rate in rps"))
                        .collect(),
                );
            }
            "--out" => out = Some(next("a path").clone()),
            other => panic!("unknown argument {other}"),
        }
    }

    // Capacity probe: closed loop at the requested concurrency. This is the
    // sustained service rate the open-loop sweep is measured against.
    let probe = serve_point(shards, queue_limit, |rt, op, x| {
        loadgen::closed_loop(rt, op, x, clients, duration)
    });
    let capacity = probe.throughput_rps();
    println!(
        "capacity probe ({} clients, closed loop): {capacity:.0} rps sustained, \
         p50 {:.1} µs, p99 {:.1} µs",
        clients,
        probe.latency.p50_ns() as f64 / 1e3,
        probe.latency.p99_ns() as f64 / 1e3,
    );

    let rates = rates.unwrap_or_else(|| {
        [0.25, 0.5, 0.75, 1.0, 1.5, 2.0].iter().map(|f| (capacity * f).max(10.0)).collect()
    });

    println!();
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "offered", "sustained", "p50 µs", "p99 µs", "p999 µs", "rejected", "goodput"
    );
    let mut reports: Vec<(f64, LoadReport)> = Vec::new();
    for &rate in &rates {
        let rep = serve_point(shards, queue_limit, |rt, op, x| {
            loadgen::open_loop(rt, op, x, rate, duration, clients)
        });
        println!(
            "{:>10.0} {:>10.0} {:>10.1} {:>10.1} {:>10.1} {:>9.1}% {:>8.0}%",
            rate,
            rep.throughput_rps(),
            rep.latency.p50_ns() as f64 / 1e3,
            rep.latency.p99_ns() as f64 / 1e3,
            rep.latency.p999_ns() as f64 / 1e3,
            100.0 * rep.rejection_rate(),
            100.0 * rep.throughput_rps() / rate,
        );
        reports.push((rate, rep));
    }

    // The knee: first offered rate the server stopped keeping up with —
    // sustained throughput under 90% of offered, or any admission
    // rejections at all.
    let knee = reports
        .iter()
        .find(|(rate, rep)| rep.throughput_rps() < 0.9 * rate || rep.rejected > 0)
        .map(|(rate, _)| *rate);
    println!();
    match knee {
        Some(rate) => println!("saturation knee: first overloaded point at {rate:.0} rps offered"),
        None => println!("saturation knee: not reached (all offered rates sustained)"),
    }

    if let Some(path) = out {
        let mut samples: Vec<Sample> = vec![probe.sample()];
        let mut meta_rows: Vec<(String, String)> = probe.meta();
        for (rate, rep) in &reports {
            samples.push(rep.sample());
            meta_rows.push((format!("{}_offered_rps", rep.name), format!("{rate:.0}")));
            meta_rows.extend(rep.meta());
        }
        meta_rows.insert(0, ("bench".to_string(), "load_observatory".to_string()));
        meta_rows.insert(1, ("shards".to_string(), shards.to_string()));
        meta_rows.insert(2, ("queue_limit".to_string(), queue_limit.to_string()));
        meta_rows.insert(
            3,
            (
                "saturation_knee_rps".to_string(),
                knee.map_or("null".to_string(), |r| format!("{r:.0}")),
            ),
        );
        let meta: Vec<(&str, String)> =
            meta_rows.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        std::fs::write(&path, to_json(&meta, &samples)).expect("write observatory json");
        println!("wrote {path}");
    }
}
