//! Regenerates **Fig. 1(b) and 1(c)**: multi-level programming staircases of
//! the on-chip write-verify scheme.
//!
//! Fig. 1(b): SET level vs pulse number for V_g steps of 0.01 V and 0.02 V
//! (from two initial states). Fig. 1(c): RESET level vs pulse number for
//! V_SL steps of 0.02 V and 0.03 V. Pulse width 30 ns, 16 levels over
//! 1–100 µS, exactly as the paper states.
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin fig1_write_verify
//! ```

use gramc_array::{reset_staircase, set_staircase, WriteVerifyController};
use gramc_device::{CellNoise, DeviceParams, Nmos, OneTOneR};
use gramc_linalg::random::seeded_rng;

fn main() {
    let mut rng = seeded_rng(1);
    let wv = WriteVerifyController::paper_default();
    let pulses = 30;

    println!("# Fig. 1(b): SET staircase — level vs pulse number (30 ns pulses)");
    println!(
        "{:>6} {:>18} {:>18} {:>22}",
        "pulse", "Vg_step=0.01V", "Vg_step=0.02V", "Vg_step=0.02V (init 3)"
    );
    let mut cell_a = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
    let s_001 = set_staircase(&mut cell_a, wv.config(), wv.quantizer(), 0.01, 0, pulses, &mut rng);
    let mut cell_b = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
    let s_002 = set_staircase(&mut cell_b, wv.config(), wv.quantizer(), 0.02, 0, pulses, &mut rng);
    // The paper's second initial state: start from level 3.
    let mut cell_c = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
    let s_002_init3 =
        set_staircase(&mut cell_c, wv.config(), wv.quantizer(), 0.02, 3, pulses, &mut rng);
    // Display clamps to the 0–15 level scale, as the paper's axis does
    // (conductance keeps rising past 100 µS physically).
    let clamp = |l: f64| l.clamp(0.0, 15.0);
    for i in 0..pulses {
        println!(
            "{:>6} {:>18.2} {:>18.2} {:>22.2}",
            s_001[i].0,
            clamp(s_001[i].1),
            clamp(s_002[i].1),
            clamp(s_002_init3[i].1)
        );
    }

    println!();
    println!("# Fig. 1(c): RESET staircase — level vs pulse number (from level 15)");
    println!("{:>6} {:>18} {:>18}", "pulse", "Vsl_step=0.02V", "Vsl_step=0.03V");
    let mut cell_d = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
    let r_002 =
        reset_staircase(&mut cell_d, wv.config(), wv.quantizer(), 0.02, 15, pulses, &mut rng);
    let mut cell_e = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
    let r_003 =
        reset_staircase(&mut cell_e, wv.config(), wv.quantizer(), 0.03, 15, pulses, &mut rng);
    for i in 0..pulses {
        println!(
            "{:>6} {:>18.2} {:>18.2}",
            r_002[i].0,
            r_002[i].1.clamp(0.0, 15.0),
            r_003[i].1.clamp(0.0, 15.0)
        );
    }

    // Shape checks the paper's figure exhibits.
    let cross15 = |s: &[(usize, f64)]| s.iter().find(|(_, l)| *l >= 15.0).map(|(p, _)| *p);
    let cross0 = |s: &[(usize, f64)]| s.iter().find(|(_, l)| *l <= 0.5).map(|(p, _)| *p);
    println!();
    println!("# Shape summary");
    match cross15(&s_002) {
        Some(p) => println!("SET  0.02 V/step reaches level 15 at pulse {p} (paper: within ~25)"),
        None => println!("SET  0.02 V/step tops out at {:.1}", s_002.last().unwrap().1),
    }
    println!(
        "SET  0.01 V/step reaches level {:.1} in {pulses} pulses (paper: ~half the 0.02 slope)",
        s_001.last().unwrap().1.clamp(0.0, 15.0)
    );
    match cross0(&r_003) {
        Some(p) => println!("RESET 0.03 V/step reaches level 0 at pulse {p} (paper: within ~25)"),
        None => println!("RESET 0.03 V/step bottoms at {:.1}", r_003.last().unwrap().1),
    }
    match cross0(&r_002) {
        Some(p) => {
            println!("RESET 0.02 V/step reaches level 0 at pulse {p} (slower, as in the paper)")
        }
        None => println!("RESET 0.02 V/step bottoms at {:.1}", r_002.last().unwrap().1.max(0.0)),
    }

    // Write-verify closed-loop statistics (the scheme the staircases feed).
    println!();
    println!("# Closed-loop write-verify: pulses to program each target level (fresh cells)");
    println!("{:>6} {:>8} {:>10}", "level", "pulses", "achieved");
    let mut rng2 = seeded_rng(2);
    for target in 0..16 {
        let mut cell =
            OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::default());
        let report = wv.program_cell(&mut cell, target, &mut rng2).expect("program");
        println!("{:>6} {:>8} {:>10.2}", target, report.pulses, report.achieved_level);
    }
}
