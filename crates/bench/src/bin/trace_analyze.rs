//! Offline analysis of the serving observatory's artifacts: reads
//! `TRACE_serving.json` (the chrome://tracing journal export) and
//! `METRICS_serving.jsonl` (the live metrics stream) and reconstructs the
//! request-scoped view the raw files only imply:
//!
//! * **critical-path breakdown per request** — queue wait (lead of a
//!   dispatch) vs coalesce wait (rider joining an open batch) vs
//!   execution, stitched together by following each request's flow
//!   events from its `queued:` span to the execution slice its flow-end
//!   record lands in;
//! * **per-tenant cost table** — requests, rejections, latency
//!   percentiles and modeled joules from the final metrics record;
//! * **top-N slowest requests** by end-to-end time.
//!
//! ```sh
//! cargo run -p gramc-bench --bin trace_analyze -- \
//!     TRACE_serving.json METRICS_serving.jsonl [--top N] [--check]
//! ```
//!
//! With `--check` (CI mode) the binary exits non-zero on parse errors,
//! unlinked rider flows (a flow start without a matching end, or a flow
//! end that lands in no execution slice), metrics records off the pinned
//! schema version, or per-tenant hardware attribution that does not sum
//! exactly to `hw_total`.

use std::collections::BTreeMap;
use std::process::ExitCode;

use gramc_bench::json::{parse, Json};

/// One `ph:"X"` slice from the trace.
#[derive(Debug, Clone)]
struct Slice {
    name: String,
    ts: f64,
    dur: f64,
    tid: u64,
    /// The request id flow-carrying queue-wait slices expose as `args.req`.
    req: Option<u64>,
}

/// One chrome flow record (`ph:"s"` start or `ph:"f"` end).
#[derive(Debug, Clone, Copy)]
struct FlowRecord {
    id: u64,
    ts: f64,
    tid: u64,
}

/// The reconstructed critical path of one request.
#[derive(Debug, Clone)]
struct RequestPath {
    request: u64,
    /// `true` when the request rode an already-open coalesced batch.
    rider: bool,
    /// Queue wait (lead) or coalesce wait (rider), µs.
    wait_us: f64,
    /// Duration of the execution slice the flow lands in, µs.
    exec_us: f64,
    /// Name of that execution slice (`job:<kind>`).
    exec_name: String,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut top_n = 10usize;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--top" => {
                top_n = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--top needs an integer argument");
            }
            other => paths.push(other.to_string()),
        }
    }
    let [trace_path, metrics_path] = paths.as_slice() else {
        eprintln!(
            "usage: trace_analyze TRACE_serving.json METRICS_serving.jsonl [--top N] [--check]"
        );
        return ExitCode::FAILURE;
    };

    let mut failures: Vec<String> = Vec::new();
    analyze_trace(trace_path, top_n, &mut failures);
    analyze_metrics(metrics_path, &mut failures);

    if failures.is_empty() {
        println!("\ntrace_analyze: all checks passed");
        return ExitCode::SUCCESS;
    }
    eprintln!();
    for f in &failures {
        eprintln!("trace_analyze FAIL: {f}");
    }
    if check {
        return ExitCode::FAILURE;
    }
    eprintln!("(non --check mode: reporting only)");
    ExitCode::SUCCESS
}

/// Parses the chrome trace and prints the per-request breakdown; records
/// linkage violations into `failures`.
fn analyze_trace(path: &str, top_n: usize, failures: &mut Vec<String>) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!("{path}: {e}"));
            return;
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            failures.push(format!("{path}: {e}"));
            return;
        }
    };
    let Some(events) = doc.as_arr() else {
        failures.push(format!("{path}: top level is not an array"));
        return;
    };

    let mut slices: Vec<Slice> = Vec::new();
    let mut starts: Vec<FlowRecord> = Vec::new();
    let mut ends: Vec<FlowRecord> = Vec::new();
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default().to_string();
        let ts = ev.num("ts").unwrap_or(0.0);
        let tid = ev.num("tid").unwrap_or(0.0) as u64;
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => slices.push(Slice {
                name,
                ts,
                dur: ev.num("dur").unwrap_or(0.0),
                tid,
                req: ev.get("args").and_then(|a| a.num("req")).map(|r| r as u64),
            }),
            Some("s") => {
                starts.push(FlowRecord { id: ev.num("id").unwrap_or(0.0) as u64, ts, tid })
            }
            Some("f") => ends.push(FlowRecord { id: ev.num("id").unwrap_or(0.0) as u64, ts, tid }),
            _ => {}
        }
    }

    // Flow grammar: starts and ends pair up by id.
    let end_by_id: BTreeMap<u64, FlowRecord> = ends.iter().map(|e| (e.id, *e)).collect();
    let start_ids: BTreeMap<u64, ()> = starts.iter().map(|s| (s.id, ())).collect();
    for s in &starts {
        if !end_by_id.contains_key(&s.id) {
            failures.push(format!("flow start id {} has no flow end (unlinked rider?)", s.id));
        }
    }
    for e in &ends {
        if !start_ids.contains_key(&e.id) {
            failures.push(format!("flow end id {} has no flow start", e.id));
        }
    }

    // Stitch each request's queue-wait slice to the execution slice its
    // flow-end record lands in (same lane, timestamp inside the slice).
    let exec_slices: Vec<&Slice> = slices.iter().filter(|s| s.name.starts_with("job:")).collect();
    let mut requests: Vec<RequestPath> = Vec::new();
    for s in slices.iter().filter(|s| s.name.starts_with("queued:")) {
        let Some(req) = s.req else {
            failures.push(format!(
                "queue-wait slice '{}' at ts {} carries no request id",
                s.name, s.ts
            ));
            continue;
        };
        let Some(end) = end_by_id.get(&req) else {
            // Already reported through the flow grammar above.
            continue;
        };
        let exec = exec_slices
            .iter()
            .find(|e| e.tid == end.tid && end.ts >= e.ts && end.ts <= e.ts + e.dur);
        let Some(exec) = exec else {
            failures.push(format!(
                "request {req}: flow end at ts {} on lane {} lands in no execution slice",
                end.ts, end.tid
            ));
            continue;
        };
        requests.push(RequestPath {
            request: req,
            rider: s.name == "queued:rider",
            wait_us: s.dur,
            exec_us: exec.dur,
            exec_name: exec.name.clone(),
        });
    }
    requests.sort_by_key(|r| r.request);

    let riders = requests.iter().filter(|r| r.rider).count();
    let leads = requests.len() - riders;
    println!("## critical path ({} requests: {leads} leads, {riders} riders)", requests.len());
    let mean = |xs: Vec<f64>| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    println!(
        "mean queue wait {:.1} µs (leads), mean coalesce wait {:.1} µs (riders), \
         mean execute {:.1} µs",
        mean(requests.iter().filter(|r| !r.rider).map(|r| r.wait_us).collect()),
        mean(requests.iter().filter(|r| r.rider).map(|r| r.wait_us).collect()),
        mean(requests.iter().map(|r| r.exec_us).collect()),
    );
    let mut slowest = requests.clone();
    slowest.sort_by(|a, b| {
        (b.wait_us + b.exec_us).partial_cmp(&(a.wait_us + a.exec_us)).expect("finite")
    });
    println!("top {} slowest requests:", top_n.min(slowest.len()));
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>12}  exec span",
        "request", "kind", "wait µs", "exec µs", "total µs"
    );
    for r in slowest.iter().take(top_n) {
        println!(
            "{:>8} {:>7} {:>12.1} {:>12.1} {:>12.1}  {}",
            r.request,
            if r.rider { "rider" } else { "lead" },
            r.wait_us,
            r.exec_us,
            r.wait_us + r.exec_us,
            r.exec_name,
        );
    }
}

/// Parses the metrics JSONL stream: validates every record against the
/// pinned schema, checks attribution conservation on the final record and
/// prints the per-tenant cost table.
fn analyze_metrics(path: &str, failures: &mut Vec<String>) {
    // Keep in lockstep with gramc_runtime::METRICS_SCHEMA_VERSION.
    const SCHEMA: f64 = 3.0;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!("{path}: {e}"));
            return;
        }
    };
    let mut last: Option<Json> = None;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse(line) {
            Ok(rec) => {
                if rec.num("schema_version") != Some(SCHEMA) {
                    failures.push(format!("{path}:{}: schema_version != {SCHEMA}", i + 1));
                }
                last = Some(rec);
            }
            Err(e) => failures.push(format!("{path}:{}: {e}", i + 1)),
        }
    }
    let Some(rec) = last else {
        failures.push(format!("{path}: no metrics records"));
        return;
    };

    // Attribution conservation: tenant hardware shares sum exactly to the
    // global totals, field by field.
    let hw_total = rec.get("hw_total").and_then(Json::as_obj);
    let tenants = rec.get("tenants").and_then(Json::as_obj);
    match (hw_total, tenants) {
        (Some(total), Some(tenants)) => {
            for (field, value) in total {
                let want = value.as_f64().unwrap_or(0.0);
                let got: f64 =
                    tenants.values().filter_map(|t| t.get("hw").and_then(|h| h.num(field))).sum();
                if got != want {
                    failures.push(format!(
                        "attribution not conservative: sum of tenants' {field} = {got}, \
                         hw_total.{field} = {want}"
                    ));
                }
            }
        }
        _ => failures.push(format!("{path}: final record is missing hw_total/tenants")),
    }

    println!("\n## per-tenant cost table (final metrics record)");
    println!(
        "{:>10} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "tenant", "requests", "rejected", "p50 µs", "p99 µs", "energy J"
    );
    if let Some(tenants) = tenants {
        for (name, t) in tenants {
            let lat = |key: &str| t.get("latency").and_then(|l| l.num(key)).unwrap_or(0.0) / 1e3;
            println!(
                "{:>10} {:>9} {:>9} {:>10.1} {:>10.1} {:>12.3e}",
                name,
                t.num("requests").unwrap_or(0.0),
                t.num("rejected").unwrap_or(0.0),
                lat("p50_ns"),
                lat("p99_ns"),
                t.get("modeled").and_then(|m| m.num("energy_j")).unwrap_or(0.0),
            );
        }
    }
    if let Some(slo) = rec.get("slo") {
        println!(
            "slo: {} latency alerts, {} rejection alerts, burn {:.3}/{:.3}",
            slo.num("latency_alerts").unwrap_or(0.0),
            slo.num("rejection_alerts").unwrap_or(0.0),
            slo.num("latency_burn").unwrap_or(0.0),
            slo.num("rejection_burn").unwrap_or(0.0),
        );
    }
    if let Some(j) = rec.get("journal") {
        println!(
            "journal: {}/{} events, {} overwritten (drop rate {:.3})",
            j.num("len").unwrap_or(0.0),
            j.num("capacity").unwrap_or(0.0),
            j.num("overwritten").unwrap_or(0.0),
            j.num("drop_rate").unwrap_or(0.0),
        );
    }
}
