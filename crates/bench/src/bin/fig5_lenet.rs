//! Regenerates **Fig. 5**: LeNet-5 digit-recognition accuracy with INT4,
//! INT8 (bit-sliced) and float32 weights.
//!
//! Paper values (MNIST): INT4 0.97613, INT8 0.985, float32 0.9878. This
//! reproduction trains on the synthetic-digits substitute (DESIGN.md §2);
//! the claim under test is the *ordering and spacing* of the three
//! precisions through the analog pipeline, not the absolute MNIST numbers.
//!
//! Pass `--quick` for a reduced run.
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin fig5_lenet
//! ```

use gramc_core::MacroConfig;
use gramc_data::DigitsDataset;
use gramc_linalg::random::seeded_rng;
use gramc_nn::{GramcLenet, LeNet5, Precision, Tensor3};

fn to_tensor(pixels: &[f64]) -> Tensor3 {
    Tensor3::from_vec(1, 28, 28, pixels.to_vec())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, n_test, epochs) = if quick { (600, 200, 3) } else { (6000, 2000, 8) };

    let mut rng = seeded_rng(55);
    let ds = DigitsDataset::generate(&mut rng, n_train, n_test);
    let train: Vec<Tensor3> = ds.train.iter().map(|d| to_tensor(&d.pixels)).collect();
    let train_labels: Vec<usize> = ds.train.iter().map(|d| d.label).collect();
    let test: Vec<Tensor3> = ds.test.iter().map(|d| to_tensor(&d.pixels)).collect();
    let test_labels: Vec<usize> = ds.test.iter().map(|d| d.label).collect();

    let mut net = LeNet5::new(&mut rng);
    eprintln!("training LeNet-5: {n_train} images × {epochs} epochs…");
    // Per-epoch lr decay + best-snapshot selection: per-sample momentum SGD
    // at a fixed rate can diverge late in training.
    let mut best = net.clone();
    let mut best_acc = 0.0;
    for epoch in 0..epochs {
        let lr = 0.002 * 0.75_f64.powi(epoch);
        let stats = net.train_epoch(&train, &train_labels, lr, 0.9);
        eprintln!("  epoch {epoch}: loss {:.4}, acc {:.3}", stats.loss, stats.accuracy);
        if stats.accuracy > best_acc {
            best_acc = stats.accuracy;
            best = net.clone();
        }
    }
    let mut net = best;

    let fp32 = net.evaluate(&test, &test_labels);

    eprintln!("running INT8 analog inference ({n_test} images)…");
    let mut int8 = GramcLenet::new(net.clone(), Precision::Int8, MacroConfig::default(), 16, 56)
        .expect("backend");
    let acc8 = int8.evaluate(&test, &test_labels).expect("int8 eval");

    eprintln!("running INT4 analog inference ({n_test} images)…");
    let mut int4 =
        GramcLenet::new(net, Precision::Int4, MacroConfig::default(), 16, 57).expect("backend");
    let acc4 = int4.evaluate(&test, &test_labels).expect("int4 eval");

    println!("# Fig. 5: LeNet-5 accuracy (synthetic digits, {n_test} test images)");
    println!("{:>10} {:>12} {:>12}", "precision", "this repo", "paper(MNIST)");
    println!("{:>10} {:>12.4} {:>12}", "INT4", acc4, 0.97613);
    println!("{:>10} {:>12.4} {:>12}", "INT8", acc8, 0.985);
    println!("{:>10} {:>12.4} {:>12}", "float32", fp32, 0.9878);
    println!();
    let ordered = acc4 <= acc8 + 0.01 && acc8 <= fp32 + 0.01;
    println!("ordering INT4 ≤ INT8 ≈ FP32 holds: {ordered}");
    println!("INT8 within {:.2} points of FP32 (paper: 0.37 points)", 100.0 * (fp32 - acc8).abs());
}
