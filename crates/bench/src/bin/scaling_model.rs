//! Supplemental scaling study (EXPERIMENTS.md E8): the analog one-step
//! solver's O(1) settling versus digital O(n³) factorization — the paper's
//! "high speed and low power" claim made quantitative with the cost models
//! of `gramc_core::metrics`.
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin scaling_model
//! ```

use gramc_core::metrics::{AnalogCostModel, DigitalCostModel};
use gramc_core::{MacroConfig, MacroGroup};
use std::time::Instant;

use gramc_linalg::{lu, random};

fn main() {
    let analog = AnalogCostModel::default();
    let digital = DigitalCostModel::default();

    println!("# Analog vs digital INV solve (model)");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>14} {:>14}",
        "n", "analog lat(s)", "digital lat(s)", "speedup", "analog E(J)", "digital E(J)"
    );
    for n in [8usize, 16, 32, 64, 128] {
        let a = analog.solve(n);
        let d = digital.lu_solve(n);
        println!(
            "{:>6} {:>14.3e} {:>14.3e} {:>10.1} {:>14.3e} {:>14.3e}",
            n,
            a.latency,
            d.latency,
            d.latency / a.latency,
            a.energy,
            d.energy
        );
    }

    println!("\n# Measured digital LU wall time on this machine (sanity anchor)");
    println!("{:>6} {:>14}", "n", "measured (s)");
    let mut rng = random::seeded_rng(70);
    for n in [32usize, 64, 128, 256] {
        let a = random::spd_with_condition(&mut rng, n, 10.0);
        let b = random::normal_vector(&mut rng, n);
        let start = Instant::now();
        let reps = 5;
        for _ in 0..reps {
            let _ = lu::solve(&a, &b).expect("solve");
        }
        println!("{:>6} {:>14.3e}", n, start.elapsed().as_secs_f64() / reps as f64);
    }

    println!("\n# Measured counters vs closed form: the a-priori mvm(n) model against");
    println!("# telemetry counters from a real drive, priced through `attribute`");
    let n = 64;
    let mut group = MacroGroup::new(2, MacroConfig::small_ideal(n), 3);
    let mut mrng = random::seeded_rng(71);
    let a = random::gaussian_matrix(&mut mrng, n, n);
    let op = group.load_matrix(&a).expect("load");
    let x = random::normal_vector(&mut mrng, n);
    let mvms = 8;
    let before = group.hw_snapshot();
    for _ in 0..mvms {
        group.mvm(op, &x).expect("mvm");
    }
    let hw = group.hw_snapshot().since(&before);
    let measured = analog.attribute(&hw);
    let closed = analog.mvm(n);
    println!(
        "{mvms} MVMs at n={n}: {} DAC drives, {} ADC conversions, {} settles",
        hw.dac_drives, hw.adc_conversions, hw.settle_events
    );
    println!(
        "  measured per MVM: {:.3e} s, {:.3e} J   closed-form mvm({n}): {:.3e} s, {:.3e} J",
        measured.latency / mvms as f64,
        measured.energy / mvms as f64,
        closed.latency,
        closed.energy
    );

    println!("\n# Programming amortization: write-verify cost vs solves per matrix");
    let n = 128;
    let program = analog.program(n, 20.0);
    println!(
        "programming a {n}×{n} operator: {:.3e} s, {:.3e} J (20 pulses/cell avg)",
        program.latency, program.energy
    );
    for solves in [1usize, 10, 100, 1000] {
        let total_analog = program.latency + solves as f64 * analog.solve(n).latency;
        let total_digital = solves as f64 * digital.lu_solve(n).latency;
        println!(
            "{:>6} solves: analog total {:.3e} s vs digital {:.3e} s ({}x)",
            solves,
            total_analog,
            total_digital,
            (total_digital / total_analog) as i64
        );
    }
}
