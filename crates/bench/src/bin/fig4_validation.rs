//! Regenerates **Fig. 4**: accuracy of the four reconfigured AMC modes
//! against the numerical baseline, with 4-bit quantization and the paper's
//! analog noise budget.
//!
//! * (a) MVM — 128×128 Wishart matrix,
//! * (b) INV — 128×128 Wishart matrix, solve `Ax = b`,
//! * (c) PINV — 128×6 synthetic PM2.5 regression,
//! * (d) EGV — 128×128 (spiked) Gram matrix, normalized outputs.
//!
//! Pass `--quick` to run at n = 32 for smoke-testing.
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin fig4_validation
//! ```

use gramc_bench::{correlation, format_scatter};
use gramc_core::{MacroConfig, MacroGroup};
use gramc_data::{spiked_gram, Pm25Dataset};
use gramc_linalg::{lu, pseudoinverse, random, vector, SymmetricEigen};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 32 } else { 128 };
    let rows_shown = 8;
    let mut rng = random::seeded_rng(44);

    let config = MacroConfig { array_rows: n, array_cols: n, ..MacroConfig::default() };
    let mut group = MacroGroup::new(4, config, 45);

    // ---------------- Fig. 4(a): MVM on a Wishart matrix -----------------
    // The paper does not state the Wishart degrees of freedom; INV errors
    // scale steeply with the condition number (see ablation_nonideal), and
    // k = 16·n gives κ ≈ 2.3 — the regime consistent with the paper's
    // ~10 % Fig. 4(b) spread.
    let wishart = random::wishart(&mut rng, n, 16 * n);
    let x_in = random::normal_vector(&mut rng, n);
    let op = group.load_matrix(&wishart).expect("load wishart");
    let y_analog = group.mvm(op, &x_in).expect("mvm");
    let y_ideal = wishart.matvec(&x_in);
    // The paper normalizes axes to the read voltage scale; report raw.
    println!(
        "{}",
        format_scatter("Fig. 4(a) MVM — 128×128 Wishart, 4-bit", &y_ideal, &y_analog, rows_shown)
    );
    println!("scatter correlation: {:.4}\n", correlation(&y_ideal, &y_analog));

    // ---------------- Fig. 4(b): INV on the same Wishart ------------------
    // Two numerical references: the original matrix A (error then includes
    // the 4-bit quantization, which conditioning amplifies by ~κ) and the
    // quantized operator Â actually held in the array (isolates the analog
    // circuit fidelity — this is the comparison the paper's ~10 % figure is
    // consistent with; see EXPERIMENTS.md).
    let b = random::normal_vector(&mut rng, n);
    let x_analog = group.solve_inv(op, &b).expect("inv");
    let quantized = group.operator_info(op).expect("info").quantized.clone();
    let x_ideal = lu::solve(&quantized, &b).expect("lu quantized");
    let x_full = lu::solve(&wishart, &b).expect("lu");
    println!(
        "{}",
        format_scatter(
            "Fig. 4(b) INV — 128×128 Wishart, 4-bit (vs quantized Â)",
            &x_ideal,
            &x_analog,
            rows_shown
        )
    );
    println!("scatter correlation: {:.4}", correlation(&x_ideal, &x_analog));
    println!(
        "vs unquantized A (quantization × conditioning): {:.2} %\n",
        100.0 * vector::rel_error(&x_analog, &x_full)
    );
    group.free_operator(op).expect("free");

    // ---------------- Fig. 4(c): PINV on PM2.5 (128×6) --------------------
    let samples = if quick { 32 } else { 128 };
    let ds = Pm25Dataset::generate(&mut rng, samples, 0.05);
    let op_p = group.load_matrix(&ds.design).expect("load design");
    let w_analog = group.solve_pinv(op_p, &ds.response).expect("pinv");
    let w_ideal = pseudoinverse(&ds.design).expect("svd").matvec(&ds.response);
    println!(
        "{}",
        format_scatter(
            "Fig. 4(c) PINV — PM2.5 regression (128×6), 4-bit",
            &w_ideal,
            &w_analog,
            rows_shown
        )
    );
    println!("scatter correlation: {:.4}\n", correlation(&w_ideal, &w_analog));
    group.free_operator(op_p).expect("free");

    // ---------------- Fig. 4(d): EGV on a Gram matrix ---------------------
    let gram = spiked_gram(&mut rng, n, 2 * n, 3.0);
    let op_g = group.load_matrix(&gram).expect("load gram");
    let sol = group.solve_egv(op_g).expect("egv");
    let eig = SymmetricEigen::new(&gram).expect("eigen");
    let mut v_ref = eig.eigenvector(0);
    // Sign-align for the scatter.
    if vector::dot(&sol.eigenvector, &v_ref) < 0.0 {
        for v in v_ref.iter_mut() {
            *v = -*v;
        }
    }
    println!(
        "{}",
        format_scatter(
            "Fig. 4(d) EGV — Gram matrix (128×128), normalized outputs, 4-bit",
            &v_ref,
            &sol.eigenvector,
            rows_shown
        )
    );
    println!("scatter correlation: {:.4}", correlation(&v_ref, &sol.eigenvector));
    println!(
        "eigenvalue: analog(Rayleigh) {:.4} vs digital {:.4} (λ level {})",
        sol.eigenvalue, eig.eigenvalues[0], sol.lambda_level
    );

    println!("\n# Summary (paper: \"relative errors around ten percent\")");
    println!("(INV reference = quantized operator; see note above)");
    for (name, ideal, analog) in [
        ("MVM ", &y_ideal, &y_analog),
        ("INV ", &x_ideal, &x_analog),
        ("PINV", &w_ideal, &w_analog),
        ("EGV ", &v_ref, &sol.eigenvector),
    ] {
        println!("{name}: {:6.2} %", 100.0 * vector::rel_error(analog, ideal));
    }
}
