//! Kernel perf baseline: times the hot paths the batched execution engine
//! optimized — matmul (naive / blocked / blocked+threads), multi-RHS LU
//! substitution, cached vs uncached crossbar MVM, batched vs scalar analog
//! MVM, and DC-operator reuse — and writes the results to the repo-root
//! `BENCH_kernels.json` so future PRs can track speedups. With the
//! `fault-inject` feature the report also carries a **fault sweep**:
//! serving accuracy and recovery latency of the self-healing runtime as a
//! function of the stuck-cell rate.
//!
//! Both modes also write a `TELEMETRY_report.json` next to the benchmark
//! report: the sharded runtime's serving metrics (submit→dispatch→complete
//! latency histograms, scheduler counters, per-job-kind hardware counters
//! priced through the analog cost model) plus — in full mode — the
//! hardware events of one streamed LeNet pass.
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin bench_kernels [-- output.json]
//! # CI smoke mode: fault sweep + perf regression gate against a baseline
//! # (exits non-zero if a gated kernel regresses >20%, machine-normalized):
//! cargo run -p gramc-bench --release --features fault-inject \
//!     --bin bench_kernels -- --smoke --baseline BENCH_kernels.json smoke.json
//! ```

use gramc_array::{ActiveRegion, ArrayConfig, CrossbarArray};
use gramc_bench::loadgen;
use gramc_bench::timing::{to_json, Reporter, Sample};
use gramc_circuit::{dc_solve, topology, DcOperator, OpampModel};
use gramc_core::metrics::{AnalogAreaModel, AnalogCostModel, CellLayout};
use gramc_core::tiling::TileMapping;
use gramc_core::{MacroConfig, MacroGroup, NonidealityConfig};
use gramc_device::LevelQuantizer;
use gramc_linalg::{random, LuDecomposition, Matrix};
use gramc_nn::{GramcLenet, LeNet5, Precision, Tensor3};
use gramc_runtime::{HwSnapshot, MetricsSnapshot, Placement, Runtime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// JSON object for one hardware-counter snapshot (stable
/// [`HwSnapshot::fields`] order).
fn hw_json(hw: &HwSnapshot) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("{");
    for (i, (name, v)) in hw.fields().iter().enumerate() {
        let comma = if i + 1 < gramc_telemetry::HW_FIELDS { ", " } else { "" };
        let _ = write!(s, "\"{name}\": {v}{comma}");
    }
    s.push('}');
    s
}

/// JSON object pricing the benched deployment's silicon area through
/// [`AnalogAreaModel`]: per-component mm² (crossbar / DAC / ADC) for both
/// cell layouts — 1T1R (≈12F², transistor-limited) and the passive
/// Stanford-PKU crosspoint (4F² density limit) — summed over `macros`
/// identical `rows × cols` macros.
fn area_json(macros: usize, rows: usize, cols: usize) -> String {
    use std::fmt::Write as _;
    let base = AnalogAreaModel::default();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"macros\": {macros}, \"rows\": {rows}, \"cols\": {cols}, \
         \"feature_size_nm\": {:.0}",
        base.feature_size * 1e9
    );
    for (key, layout) in
        [("cell_1t1r", CellLayout::OneTOneR), ("cell_crosspoint", CellLayout::Crosspoint)]
    {
        let model = AnalogAreaModel { cell_layout: layout, ..base.clone() };
        let a = model.deployment_area(macros, rows, cols);
        let _ = write!(
            s,
            ", \"{key}\": {{\"crossbar_mm2\": {:e}, \"dac_mm2\": {:e}, \
             \"adc_mm2\": {:e}, \"total_mm2\": {:e}}}",
            a.crossbar_mm2,
            a.dac_mm2,
            a.adc_mm2,
            a.total_mm2()
        );
    }
    s.push('}');
    s
}

/// JSON object projecting the measured serving numbers to a
/// million-user deployment (closing ROADMAP item 4): at 100 requests per
/// user per day with a 5× diurnal peak, how many of the benched
/// deployments (and crossbar arrays) sustain the peak rate, what the
/// fleet burns per day in joules (measured energy per served request ×
/// daily volume), and its silicon footprint under both cell layouts.
fn deployment_projection_json(
    runtime: &MetricsSnapshot,
    deployment: (usize, usize, usize),
    sustained_rps: f64,
) -> String {
    use std::fmt::Write as _;
    const USERS: f64 = 1e6;
    const REQUESTS_PER_USER_DAY: f64 = 100.0;
    const PEAK_FACTOR: f64 = 5.0;
    let (macros, rows, cols) = deployment;
    let requests_per_day = USERS * REQUESTS_PER_USER_DAY;
    let mean_rps = requests_per_day / 86_400.0;
    let peak_rps = mean_rps * PEAK_FACTOR;
    let sustained = sustained_rps.max(1.0);
    let deployments = (peak_rps / sustained).ceil().max(1.0);
    let served = runtime.submit_to_complete.count.max(1) as f64;
    let energy_per_request =
        AnalogCostModel::default().attribute(&runtime.hw_total).energy / served;
    let base = AnalogAreaModel::default();
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"users\": {USERS:.0}, \"requests_per_user_day\": {REQUESTS_PER_USER_DAY:.0}, \
         \"requests_per_day\": {requests_per_day:.0}, \"peak_factor\": {PEAK_FACTOR}, \
         \"mean_rps\": {mean_rps:.1}, \"peak_rps\": {peak_rps:.1}, \
         \"measured_sustained_rps\": {sustained:.1}, \
         \"deployments_needed\": {deployments:.0}, \
         \"arrays_needed\": {:.0}, \
         \"energy_per_request_j\": {energy_per_request:e}, \
         \"joules_per_day\": {:e}",
        deployments * macros as f64,
        energy_per_request * requests_per_day,
    );
    for (key, layout) in
        [("fleet_mm2_1t1r", CellLayout::OneTOneR), ("fleet_mm2_crosspoint", CellLayout::Crosspoint)]
    {
        let model = AnalogAreaModel { cell_layout: layout, ..base.clone() };
        let per_deployment = model.deployment_area(macros, rows, cols).total_mm2();
        let _ = write!(s, ", \"{key}\": {:e}", deployments * per_deployment);
    }
    s.push('}');
    s
}

/// Composes and writes `TELEMETRY_report.json` next to `out_path`:
/// free-form metadata, one runtime's serving-metrics snapshot under
/// `runtime_label`, the deployment's per-component area model
/// (`deployment` = macros/rows/cols), the million-user deployment
/// projection anchored at `sustained_rps` (the serving observatory's
/// measured capacity) and — in full mode — the hardware events of one
/// streamed LeNet pass priced through the default cost model.
fn write_telemetry_report(
    out_path: &str,
    meta: &[(&str, String)],
    runtime_label: &str,
    runtime: &MetricsSnapshot,
    deployment: (usize, usize, usize),
    sustained_rps: f64,
    lenet: Option<(usize, HwSnapshot)>,
) {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"meta\": {\n");
    for (i, (k, v)) in meta.iter().enumerate() {
        let comma = if i + 1 < meta.len() { "," } else { "" };
        // Numbers and booleans pass through unquoted, like `to_json`.
        if v.parse::<f64>().is_ok() || v == "true" || v == "false" {
            let _ = writeln!(out, "    \"{k}\": {v}{comma}");
        } else {
            let _ = writeln!(out, "    \"{k}\": \"{v}\"{comma}");
        }
    }
    out.push_str("  },\n");
    let _ = writeln!(out, "  \"{runtime_label}\": {},", runtime.to_json().trim_end());
    let _ = writeln!(out, "  \"area\": {},", area_json(deployment.0, deployment.1, deployment.2));
    let _ = writeln!(
        out,
        "  \"deployment_projection\": {},",
        deployment_projection_json(runtime, deployment, sustained_rps)
    );
    match lenet {
        Some((images, hw)) => {
            let cost = AnalogCostModel::default().attribute(&hw);
            let _ = writeln!(
                out,
                "  \"lenet_stream\": {{\"images\": {images}, \"hw\": {}, \
                 \"modeled\": {{\"latency_s\": {:e}, \"energy_j\": {:e}}}}}",
                hw_json(&hw),
                cost.latency,
                cost.energy
            );
        }
        None => {
            let _ = writeln!(out, "  \"lenet_stream\": null");
        }
    }
    out.push_str("}\n");
    let path = std::path::Path::new(out_path)
        .parent()
        .map_or_else(|| "TELEMETRY_report.json".into(), |d| d.join("TELEMETRY_report.json"));
    std::fs::write(&path, out).expect("write telemetry json");
    println!("wrote {}", path.display());
}

/// Smoke-mode telemetry workload: a two-shard runtime serving 32 coalesced
/// MVM requests, so CI can assert the report is well-formed — nonzero
/// DAC/ADC/settle/write-pulse counts and populated latency histograms —
/// without paying for the full bench.
fn smoke_metrics_snapshot() -> MetricsSnapshot {
    let rt = Runtime::new(2, 2, MacroConfig::small_ideal(64), 6);
    let mut rng = random::seeded_rng(21);
    let a = random::gaussian_matrix(&mut rng, 64, 64);
    let ops: Vec<_> =
        (0..2).map(|s| rt.load(&a, TileMapping::FourBit, Placement::Pinned(s)).unwrap()).collect();
    let handles: Vec<_> = (0..32)
        .map(|k| rt.submit_mvm(ops[k % 2], random::normal_vector(&mut rng, 64)).unwrap())
        .collect();
    rt.run_all();
    for h in &handles {
        h.wait_vector().unwrap();
    }
    rt.metrics_snapshot()
}

/// Serving observatory: a live [`RuntimeServer`](gramc_runtime::RuntimeServer)
/// with admission control, hammered by the [`loadgen`] generators.
///
/// Runs one closed-loop point (two in full mode) to measure sustained
/// capacity, then two open-loop points bracketing the saturation knee —
/// one at half the measured capacity (queue stays shallow, latency is the
/// service floor) and one at twice it (queue fills, admission control
/// rejects the overflow). Each point lands in `BENCH_kernels.json` as a
/// sample (p50 as `min_ns`, mean latency as `mean_ns`, completions as
/// `iters`) plus p50/p99/p999/throughput/rejection meta rows.
///
/// Side artifacts, written next to `out_path` for CI to validate:
/// `METRICS_serving.jsonl` (the live metrics stream a
/// [`MetricsReporter`](gramc_runtime::MetricsReporter) recorded during the
/// run) and `TRACE_serving.json` (the chrome://tracing journal with the
/// queued→executing span pair of every served job, plus the flow events
/// `trace_analyze` links rider requests with).
///
/// An [`SloMonitor`](gramc_runtime::SloMonitor) rides along — the
/// over-knee point floods admission control hard enough to burn the
/// rejection budget, so the artifacts carry real alerts. Returns the
/// measured sustained capacity (rps) for the deployment projection.
fn serving_observatory(
    out_path: &str,
    smoke: bool,
    samples: &mut Vec<Sample>,
    meta: &mut Vec<(String, String)>,
) -> f64 {
    use gramc_runtime::{MetricsReporter, RuntimeServer, SloConfig, SloMonitor, TenantId};
    use std::sync::Arc;
    use std::time::Duration;

    let window = Duration::from_millis(if smoke { 150 } else { 400 });
    // The serving run is dense enough to wrap the default 4096-event ring
    // many times over; size the journal to keep the whole trace.
    let rt = Arc::new(
        Runtime::new(2, 2, MacroConfig::small_ideal(64), 6)
            .with_queue_limit(64)
            .with_journal_capacity(1 << 16),
    );
    let dir = std::path::Path::new(out_path)
        .parent()
        .map_or_else(|| std::path::PathBuf::from("."), std::path::Path::to_path_buf);
    let server = RuntimeServer::start(rt.clone());
    let metrics_path = dir.join("METRICS_serving.jsonl");
    let reporter = MetricsReporter::start(rt.clone(), &metrics_path, Duration::from_millis(25))
        .expect("start metrics reporter");
    let slo = SloMonitor::start(
        rt.clone(),
        SloConfig { interval: Duration::from_millis(25), ..SloConfig::default() },
    );

    let mut rng = random::seeded_rng(23);
    let a = random::gaussian_matrix(&mut rng, 64, 64);
    let (op, loaded) =
        rt.submit_load(&a, TileMapping::FourBit, Placement::LeastLoaded).expect("load operator");
    loaded.wait().expect("load completes under the server");
    let x = random::normal_vector(&mut rng, 64);

    println!();
    let mut reports = vec![loadgen::closed_loop(&rt, op, &x, 2, window)];
    if !smoke {
        reports.push(loadgen::closed_loop(&rt, op, &x, 4, window));
    }
    // Open-loop rates are derived from the closed-loop capacity measured on
    // *this* host, so the under/over pair brackets the knee everywhere from
    // laptops to 1-core CI runners. Stable row names (not rate-suffixed)
    // keep the report keys machine-independent; the offered rate goes to
    // meta instead.
    let capacity = reports[0].throughput_rps().max(50.0);
    for (tag, frac) in [("under", 0.5), ("over", 2.0)] {
        let rate = capacity * frac;
        let mut rep = loadgen::open_loop(&rt, op, &x, rate, window, 2);
        rep.name = format!("serving_open_{tag}_knee");
        meta.push((format!("{}_offered_rps", rep.name), format!("{rate:.0}")));
        reports.push(rep);
    }
    for rep in &reports {
        println!(
            "{}: {:.0} rps sustained, p50 {:.1} µs, p99 {:.1} µs, p999 {:.1} µs, \
             rejected {:.1}%",
            rep.name,
            rep.throughput_rps(),
            rep.latency.p50_ns() as f64 / 1e3,
            rep.latency.p99_ns() as f64 / 1e3,
            rep.latency.p999_ns() as f64 / 1e3,
            100.0 * rep.rejection_rate(),
        );
        samples.push(rep.sample());
        meta.extend(rep.meta());
    }

    let serve_report = server.shutdown();

    // A two-tenant coalesced burst, drained after the server stopped so
    // it coalesces deterministically (no worker racing the submits) and
    // its rider spans sit at the journal tail, where the ring keeps them:
    // the trace gets linked rider flows for `trace_analyze`, the metrics
    // stream a non-trivial tenant table.
    let burst: Vec<_> = (0..64)
        .map(|k| {
            rt.submit_mvm_for(TenantId(1 + (k % 2) as u32), op, x.clone())
                .expect("burst submission")
        })
        .collect();
    rt.run_all();
    for h in &burst {
        h.wait().expect("burst completes");
    }

    let alerts = slo.stop();
    let lines = reporter.stop().expect("stop metrics reporter");
    let trace_path = dir.join("TRACE_serving.json");
    std::fs::write(&trace_path, rt.journal_chrome_trace()).expect("write serving trace");
    println!(
        "serving observatory: {} jobs served, {} SLO alerts, wrote {} ({} lines) and {}",
        serve_report.jobs_executed,
        alerts.len(),
        metrics_path.display(),
        lines,
        trace_path.display(),
    );
    meta.push(("serving_slo_alerts".to_string(), alerts.len().to_string()));
    meta.push(("serving_sustained_rps".to_string(), format!("{capacity:.0}")));
    capacity
}

/// Fault sweep: for each stuck-cell rate, serve a fixed MVM workload on a
/// two-shard runtime with one shard fault-injected mid-workload, and
/// record (a) the end-to-end relative error of the answers the caller
/// actually received — recovery on, so quarantine/migration/digital
/// fallback are all in play — and (b) the wall-clock latency of the drain
/// that absorbs the faults. Recovery is not repeatable in place, so each
/// iteration rebuilds the runtime from scratch and only the drain itself
/// is timed; the per-rate sample averages `DRAIN_ITERS` such drains.
#[cfg(feature = "fault-inject")]
fn fault_sweep(samples: &mut Vec<Sample>, meta: &mut Vec<(String, String)>) {
    use gramc_linalg::vector;
    use gramc_runtime::{FaultConfig, HealthConfig};
    use std::time::Instant;

    const DRAIN_ITERS: usize = 3;

    let health = HealthConfig {
        residual_tolerance: Some(0.2),
        quarantine_after: 2,
        max_retries: 2,
        ..HealthConfig::default()
    };
    let mut rng = random::seeded_rng(8);
    let a = random::gaussian_matrix(&mut rng, 64, 64);
    let reqs: Vec<Vec<f64>> = (0..32).map(|_| random::normal_vector(&mut rng, 64)).collect();

    println!();
    for rate in [0.0, 0.02, 0.05, 0.10] {
        let mut total = 0.0;
        let mut min = f64::INFINITY;
        let mut served_err = 0.0;
        let mut failed_checks = 0;
        let mut recovered = false;
        for _ in 0..DRAIN_ITERS {
            // Fresh runtime per iteration: same seeds, same fault plan,
            // same recovery work each time.
            let rt = Runtime::new(2, 4, MacroConfig::small_ideal(64), 9)
                .with_health_config(health.clone());
            let op = rt.load(&a, TileMapping::FourBit, Placement::Pinned(0)).unwrap();
            rt.inject_shard_faults(0, &FaultConfig::stuck_at(rate), 31).unwrap();

            let t = Instant::now();
            let handles: Vec<_> =
                reqs.iter().map(|x| rt.submit_mvm_batch(op, vec![x.clone()]).unwrap()).collect();
            let summary = rt.run_all();
            let ys: Vec<Vec<f64>> =
                handles.iter().map(|h| h.wait_vectors().unwrap().remove(0)).collect();
            let elapsed = t.elapsed().as_secs_f64();
            total += elapsed;
            min = min.min(elapsed);

            served_err =
                reqs.iter().zip(&ys).map(|(x, y)| vector::rel_error(y, &a.matvec(x))).sum::<f64>()
                    / reqs.len() as f64;
            failed_checks = summary.failed_checks;
            recovered = !summary.events.is_empty();
        }
        let mean = total / DRAIN_ITERS as f64;
        println!(
            "fault sweep rate {rate:.2}: served rel error {served_err:.4}, \
             {:.3} ms mean drain over {DRAIN_ITERS} runs, {failed_checks} failed checks, \
             recovered: {recovered}",
            mean * 1e3,
        );
        let tag = format!("{:02}", (rate * 100.0).round() as u32);
        samples.push(Sample {
            name: format!("fault_recovery_drain_64x2shards_rate_{tag}"),
            iters: DRAIN_ITERS as u64,
            mean_ns: mean * 1e9,
            min_ns: min * 1e9,
        });
        meta.push((format!("fault_sweep_rel_error_rate_{tag}"), format!("{served_err:.6}")));
        meta.push((format!("fault_sweep_failed_checks_rate_{tag}"), failed_checks.to_string()));
    }
}

/// Smoke-mode perf regression gate: re-times the ladder's two headline
/// kernels and compares **machine-normalized** means against the checked-in
/// baseline. Normalizing each kernel by this machine's naive-matmul time
/// cancels out how fast the host is, so the 20% budget measures algorithmic
/// regressions rather than runner lottery. Returns the names that
/// regressed.
fn perf_regression_check(
    baseline_json: &str,
    samples: &mut Vec<Sample>,
    meta: &mut Vec<(String, String)>,
) -> Vec<String> {
    const BUDGET: f64 = 1.20;
    let mut r = Reporter::new();
    let mut rng = random::seeded_rng(1);
    let a = random::gaussian_matrix(&mut rng, 512, 512);
    let b = random::gaussian_matrix(&mut rng, 512, 512);
    r.bench("matmul_naive_512", || a.matmul_reference(&b));
    r.bench("matmul_512", || a.matmul(&b));
    let spd = random::spd_with_condition(&mut rng, 128, 10.0);
    let lu = LuDecomposition::new(&spd).unwrap();
    let rhs = random::gaussian_matrix(&mut rng, 128, 64);
    r.bench("lu_solve_matrix_128x64", || lu.solve_matrix(&rhs).unwrap());

    let base_yardstick = gramc_bench::timing::read_mean_ms(baseline_json, "matmul_naive_512");
    let cur_yardstick = r.mean_ms("matmul_naive_512");
    let mut regressed = Vec::new();
    for kernel in ["matmul_512", "lu_solve_matrix_128x64"] {
        let base = base_yardstick
            .zip(gramc_bench::timing::read_mean_ms(baseline_json, kernel))
            .map(|(y, k)| k / y);
        let Some(base_norm) = base else {
            println!("perf gate: no baseline entry for {kernel}, skipping");
            continue;
        };
        let cur_norm = r.mean_ms(kernel) / cur_yardstick;
        let ratio = cur_norm / base_norm;
        println!(
            "perf gate: {kernel} normalized {cur_norm:.5} vs baseline {base_norm:.5} \
             ({ratio:.2}x, budget {BUDGET:.2}x)"
        );
        meta.push((format!("perf_gate_{kernel}_vs_baseline"), format!("{ratio:.3}")));
        if ratio > BUDGET {
            regressed.push(kernel.to_string());
        }
    }
    samples.extend(r.samples().iter().cloned());
    regressed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut baseline_path: Option<String> = None;
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--baseline" => baseline_path = it.next().cloned(),
            other => out_path = other.to_string(),
        }
    }

    // Smoke mode, for CI: the (feature-gated) fault sweep plus — when a
    // baseline is supplied — the machine-normalized perf regression gate.
    if smoke {
        let mut samples: Vec<Sample> = Vec::new();
        let mut extra_meta: Vec<(String, String)> = Vec::new();
        #[cfg(feature = "fault-inject")]
        fault_sweep(&mut samples, &mut extra_meta);
        #[cfg(not(feature = "fault-inject"))]
        println!("smoke mode: built without the fault-inject feature, skipping fault sweep");
        let sustained_rps = serving_observatory(&out_path, true, &mut samples, &mut extra_meta);
        let regressed = match &baseline_path {
            Some(p) => {
                let baseline = std::fs::read_to_string(p).expect("read baseline json");
                perf_regression_check(&baseline, &mut samples, &mut extra_meta)
            }
            None => Vec::new(),
        };
        extra_meta.insert(0, ("bench".to_string(), "bench_kernels_smoke".to_string()));
        let meta: Vec<(&str, String)> =
            extra_meta.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        std::fs::write(&out_path, to_json(&meta, &samples)).expect("write benchmark json");
        println!("wrote {out_path}");
        let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let tmeta = vec![
            ("bench", "bench_kernels_smoke".to_string()),
            ("host_cpus", host_cpus.to_string()),
        ];
        write_telemetry_report(
            &out_path,
            &tmeta,
            "runtime_sharded_mvm_2",
            &smoke_metrics_snapshot(),
            (4, 64, 64), // 2 shards × 2 macros of 64×64
            sustained_rps,
            None,
        );
        if !regressed.is_empty() {
            eprintln!("perf gate FAILED: {} regressed >20% vs baseline", regressed.join(", "));
            std::process::exit(1);
        }
        return;
    }

    let mut r = Reporter::new();

    // ── matmul: naive reference vs blocked kernel at the paper dimension
    //    and at 512 (the acceptance size for the ≥2× criterion).
    let mut rng = random::seeded_rng(1);
    for n in [128usize, 512] {
        let a = random::gaussian_matrix(&mut rng, n, n);
        let b = random::gaussian_matrix(&mut rng, n, n);
        r.bench(&format!("matmul_naive_{n}"), || a.matmul_reference(&b));
        r.bench(&format!("matmul_{n}"), || a.matmul(&b));
        if n == 512 {
            // The blocked-but-unpacked kernel the packed micro-kernel
            // replaced: the "previous rung" for the speedup meta below.
            r.bench("matmul_unpacked_512", || a.matmul_unpacked(&b));
        }
    }

    // ── multi-RHS LU: per-column solve loop vs in-place solve_matrix.
    let a = random::spd_with_condition(&mut rng, 128, 10.0);
    let lu = LuDecomposition::new(&a).unwrap();
    let rhs = random::gaussian_matrix(&mut rng, 128, 64);
    r.bench("lu_solve_loop_128x64", || {
        let mut x = Matrix::zeros(128, 64);
        for j in 0..64 {
            let col = lu.solve(&rhs.col(j)).unwrap();
            for i in 0..128 {
                x[(i, j)] = col[i];
            }
        }
        x
    });
    r.bench("lu_solve_matrix_128x64", || lu.solve_matrix(&rhs).unwrap());

    // ── LU factorization at 512: the serial right-looking baseline vs the
    //    blocked factorization whose trailing updates fan out over threads.
    let spd512 = random::spd_with_condition(&mut rng, 512, 10.0);
    r.bench("lu_factor_serial_512", || LuDecomposition::new_unblocked(&spd512).unwrap());
    r.bench("lu_factor_512", || LuDecomposition::new(&spd512).unwrap());

    // ── crossbar MVM at 128×128: per-call reconstruction (the pre-cache
    //    path every read used to pay) vs the cached snapshot, and the
    //    batched API amortizing one snapshot over a whole batch.
    let mut arr_rng = StdRng::seed_from_u64(2);
    let mut xbar = CrossbarArray::new(ArrayConfig::ideal(128, 128), &mut arr_rng);
    let q = LevelQuantizer::paper_default();
    let region = ActiveRegion::full(128, 128);
    let targets = Matrix::from_fn(128, 128, |i, j| q.conductance_of((i * 7 + j) % 16));
    xbar.program_direct(region, &targets, &q, 0.0, &mut arr_rng).unwrap();
    let v: Vec<f64> = (0..128).map(|j| ((j as f64) * 0.21).sin() * 0.2).collect();
    let batch = Matrix::from_fn(64, 128, |b, j| ((b * 128 + j) as f64 * 0.13).sin() * 0.2);

    r.bench("mvm_uncached_128", || {
        // What row_currents cost before the cache: rebuild G, then multiply.
        let g = xbar.effective_conductances_uncached(region).unwrap();
        g.matvec(&v)
    });
    r.bench("mvm_cached_128", || xbar.row_currents(region, &v, &mut arr_rng).unwrap());
    let uncached_per_mvm = r.mean_ms("mvm_uncached_128");
    let s = r.bench("mvm_batched_64x128", || {
        xbar.row_currents_batch(region, &batch, &mut arr_rng).unwrap()
    });
    let batched_per_mvm = s.mean_ms() / 64.0;

    // ── analog macro: scalar mvm loop vs mvm_batch at the paper dimension.
    let mut group = MacroGroup::new(2, MacroConfig::small_ideal(64), 3);
    let mut rng2 = random::seeded_rng(4);
    let a64 = random::gaussian_matrix(&mut rng2, 64, 64);
    let op = group.load_matrix(&a64).unwrap();
    let xs: Vec<Vec<f64>> = (0..32).map(|_| random::normal_vector(&mut rng2, 64)).collect();
    r.bench("macro_mvm_loop_32x64", || {
        xs.iter().map(|x| group.mvm(op, x).unwrap()).collect::<Vec<_>>()
    });
    r.bench("macro_mvm_batch_32x64", || group.mvm_batch(op, &xs).unwrap());

    // ── per-plane parallelism: a bit-sliced INT8 operator (4 planes)
    //    driven through the row-batched MVM with the plane fan-out capped
    //    to one thread (the pre-parallel rung) vs uncapped.
    let cfg_bits =
        MacroConfig { nonideal: NonidealityConfig::quantization_only(4), ..MacroConfig::small(64) };
    let mut group_bits = MacroGroup::new(4, cfg_bits, 17);
    let op_bits = group_bits.load_matrix_bitsliced(&a64).unwrap();
    let xmat = Matrix::from_fn(32, 64, |b, j| ((b * 64 + j) as f64 * 0.11).sin() * 0.2);
    r.bench("macro_planes_serial_32x64", || {
        gramc_linalg::parallel::with_thread_cap(1, || {
            group_bits.mvm_batch_rows(op_bits, &xmat).unwrap()
        })
    });
    r.bench("macro_planes_parallel_32x64", || group_bits.mvm_batch_rows(op_bits, &xmat).unwrap());

    // ── LeNet-5 inference: per-image drive assembly vs the fused
    //    streaming path that im2cols the whole batch into reused scratch.
    let model = LeNet5::new(&mut random::seeded_rng(7));
    let lenet_cfg =
        MacroConfig { nonideal: NonidealityConfig::quantization_only(4), ..MacroConfig::default() };
    let mut lenet = GramcLenet::new(model, Precision::Int4, lenet_cfg, 16, 11).unwrap();
    let mut img_rng = random::seeded_rng(13);
    let images: Vec<Tensor3> = (0..16)
        .map(|_| {
            let data = (0..28 * 28)
                .map(|_| random::standard_normal(&mut img_rng).abs().min(1.0))
                .collect();
            Tensor3::from_vec(1, 28, 28, data)
        })
        .collect();
    r.bench("lenet_per_image_16", || lenet.logits_batch(&images).unwrap());
    r.bench("lenet_stream_16", || lenet.logits_matrix(&images).unwrap());
    // One more streamed pass, snapshot-diffed: exactly the hardware events
    // of a 16-image inference for the telemetry report (the benched
    // iterations above accumulate an iteration-count-dependent total).
    let lenet_before = lenet.hw_snapshot();
    lenet.logits_matrix(&images).unwrap();
    let lenet_hw = lenet.hw_snapshot().since(&lenet_before);

    // ── sharded runtime: 64 MVM requests spread over one operator per
    //    shard, coalesced into one analog dispatch per operator and
    //    scheduled with work stealing. The 1-shard entry is the scheduler
    //    overhead baseline; multi-shard entries measure scaling (bounded
    //    by the host's core count — single-core CI shows ≈1×).
    let mut serving_metrics = None;
    for shards in [1usize, 2, 4] {
        let rt = Runtime::new(shards, 2, MacroConfig::small_ideal(64), 6);
        let ops: Vec<_> = (0..shards)
            .map(|s| rt.load(&a64, TileMapping::FourBit, Placement::Pinned(s)).unwrap())
            .collect();
        let reqs: Vec<Vec<f64>> = (0..64).map(|_| random::normal_vector(&mut rng2, 64)).collect();
        r.bench(&format!("runtime_sharded_mvm_{shards}"), || {
            let handles: Vec<_> = reqs
                .iter()
                .enumerate()
                .map(|(k, x)| rt.submit_mvm(ops[k % shards], x.clone()).unwrap())
                .collect();
            rt.run_all();
            handles.iter().map(|h| h.wait_vector().unwrap()).collect::<Vec<_>>()
        });
        if shards == 4 {
            serving_metrics = Some(rt.metrics_snapshot());
        }
    }

    // ── DC operator: fresh factorization per excitation vs factor-once.
    let mut rng3 = random::seeded_rng(5);
    let a32 = random::spd_with_condition(&mut rng3, 32, 5.0);
    let floor = 1e-6;
    let unit = 50e-6;
    let g_pos = a32.map(|x| if x > 0.0 { x * unit + floor } else { floor });
    let g_neg = a32.map(|x| if x < 0.0 { -x * unit + floor } else { floor });
    let b32 = random::normal_vector(&mut rng3, 32);
    let i_in: Vec<f64> = b32.iter().map(|bi| -unit * bi * 0.1).collect();
    r.bench("dc_solve_fresh_inv32", || {
        let t = topology::build_inv(&g_pos, &g_neg, &i_in, OpampModel::with_gain(1e4)).unwrap();
        dc_solve(&t.circuit).unwrap()
    });
    let mut topo = topology::build_inv(&g_pos, &g_neg, &i_in, OpampModel::with_gain(1e4)).unwrap();
    let dc_op = DcOperator::new(&topo.circuit).unwrap();
    let mut scale = 1.0;
    r.bench("dc_solve_operator_inv32", || {
        // Vary the excitation so the solve is not degenerate between iters.
        scale = if scale > 4.0 { 1.0 } else { scale * 1.01 };
        for (&src, &i) in topo.input_sources.iter().zip(&i_in) {
            topo.circuit.set_current(src, i * scale);
        }
        dc_op.solve_circuit(&topo.circuit).unwrap()
    });

    // ── summary + JSON report.
    let matmul_speedup = r.mean_ms("matmul_naive_512") / r.mean_ms("matmul_512");
    let packed_speedup = r.mean_ms("matmul_unpacked_512") / r.mean_ms("matmul_512");
    let lu_factor_speedup = r.mean_ms("lu_factor_serial_512") / r.mean_ms("lu_factor_512");
    let planes_speedup =
        r.mean_ms("macro_planes_serial_32x64") / r.mean_ms("macro_planes_parallel_32x64");
    let lenet_speedup = r.mean_ms("lenet_per_image_16") / r.mean_ms("lenet_stream_16");
    let batch_speedup = uncached_per_mvm / batched_per_mvm;
    let sharded_speedup_4v1 =
        r.mean_ms("runtime_sharded_mvm_1") / r.mean_ms("runtime_sharded_mvm_4");
    println!();
    println!(
        "matmul 512: packed kernel is {matmul_speedup:.1}x naive, \
         {packed_speedup:.2}x the unpacked blocked kernel"
    );
    println!("lu factor 512: blocked is {lu_factor_speedup:.2}x the serial right-looking rung");
    println!("macro planes: parallel fan-out is {planes_speedup:.2}x the serial rung");
    println!("lenet 16 images: streaming is {lenet_speedup:.2}x the per-image rung");
    println!(
        "batched MVM 128: {batch_speedup:.1}x the per-call reconstruction path \
         ({uncached_per_mvm:.3} ms -> {batched_per_mvm:.4} ms per MVM)"
    );
    println!(
        "sharded runtime: 64 requests over 4 shards run {sharded_speedup_4v1:.2}x \
         the 1-shard drain"
    );
    let serving = serving_metrics.expect("4-shard runtime benched above");
    println!(
        "serving latency (4 shards, submit→complete): p50 {:.1} µs, p99 {:.1} µs, \
         queue depth ≤ {}",
        serving.submit_to_complete.p50_ns() as f64 / 1e3,
        serving.submit_to_complete.p99_ns() as f64 / 1e3,
        serving.queue_depth_max,
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cpus == 1 {
        println!(
            "single-core host: the sharded speedup measures scheduler overhead only \
             (flagged overhead_only in the report meta)"
        );
    }

    // ── fault sweep (feature-gated): accuracy + recovery latency vs rate.
    let mut extra_samples: Vec<Sample> = Vec::new();
    let mut extra_meta: Vec<(String, String)> = Vec::new();
    #[cfg(feature = "fault-inject")]
    fault_sweep(&mut extra_samples, &mut extra_meta);

    // ── serving observatory: persistent server under closed- and open-loop
    //    load, bracketing the saturation knee; also writes the serving
    //    trace and live metrics stream next to the report.
    let sustained_rps = serving_observatory(&out_path, false, &mut extra_samples, &mut extra_meta);

    let mut meta = vec![
        ("bench", "bench_kernels".to_string()),
        ("dim_matmul", "512".to_string()),
        ("dim_array", "128".to_string()),
        ("threads", gramc_linalg::parallel::max_threads().to_string()),
        ("host_cpus", host_cpus.to_string()),
        ("parallel_feature", gramc_linalg::parallel::feature_enabled().to_string()),
        ("fault_inject_feature", cfg!(feature = "fault-inject").to_string()),
        ("matmul_512_speedup_vs_naive", format!("{matmul_speedup:.3}")),
        ("matmul_512_speedup_vs_unpacked", format!("{packed_speedup:.3}")),
        ("lu_factor_512_speedup_vs_serial", format!("{lu_factor_speedup:.3}")),
        ("macro_planes_speedup_vs_serial", format!("{planes_speedup:.3}")),
        ("lenet_stream_speedup_vs_per_image", format!("{lenet_speedup:.3}")),
        ("batched_mvm_128_speedup_vs_uncached", format!("{batch_speedup:.3}")),
        ("runtime_sharded_mvm_speedup_4_shards_vs_1", format!("{sharded_speedup_4v1:.3}")),
    ];
    // On a single-core host the multi-shard entries cannot overlap, so the
    // speedup measures scheduler overhead, not scaling — flag it so
    // regression tooling skips it rather than reading ≈1× as a loss.
    if host_cpus == 1 {
        meta.push(("runtime_sharded_mvm_speedup_4_shards_vs_1_overhead_only", "true".to_string()));
    }
    meta.extend(extra_meta.iter().map(|(k, v)| (k.as_str(), v.clone())));
    let mut samples = r.samples().to_vec();
    samples.extend(extra_samples);
    let json = to_json(&meta, &samples);
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");

    let mut tmeta =
        vec![("bench", "bench_kernels".to_string()), ("host_cpus", host_cpus.to_string())];
    if host_cpus == 1 {
        tmeta.push(("runtime_sharded_mvm_speedup_4_shards_vs_1_overhead_only", "true".to_string()));
    }
    write_telemetry_report(
        &out_path,
        &tmeta,
        "runtime_sharded_mvm_4",
        &serving,
        (8, 64, 64), // 4 shards × 2 macros of 64×64
        sustained_rps,
        Some((16, lenet_hw)),
    );
}
