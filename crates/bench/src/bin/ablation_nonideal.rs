//! Ablation study over the analog error budget (DESIGN.md §6): which
//! non-ideality costs how much accuracy, per computing mode.
//!
//! Sweeps: weight bits, read noise, op-amp gain/offset, signed-encoding
//! choice, and — for INV — the matrix condition number (the error term the
//! paper's text does not break out, but which dominates solve modes).
//!
//! ```sh
//! cargo run -p gramc-bench --release --bin ablation_nonideal
//! ```

use gramc_array::{ConductanceMapper, SignedEncoding};
use gramc_core::{MacroConfig, MacroGroup, NonidealityConfig, ProgrammingMode};
use gramc_device::LevelQuantizer;
use gramc_linalg::{lu, random, vector};

const N: usize = 32;

fn mvm_error(cfg: NonidealityConfig, seed: u64) -> f64 {
    let mut rng = random::seeded_rng(seed);
    let a = random::wishart(&mut rng, N, 16 * N);
    let x = random::normal_vector(&mut rng, N);
    let config =
        MacroConfig { array_rows: N, array_cols: N, nonideal: cfg, ..MacroConfig::default() };
    let mut group = MacroGroup::new(2, config, seed + 1);
    let op = group.load_matrix(&a).expect("load");
    let y = group.mvm(op, &x).expect("mvm");
    vector::rel_error(&y, &a.matvec(&x))
}

fn inv_error_vs_cond(cond: f64, seed: u64) -> f64 {
    let mut rng = random::seeded_rng(seed);
    let a = random::spd_with_condition(&mut rng, N, cond);
    let b = random::normal_vector(&mut rng, N);
    let config = MacroConfig { array_rows: N, array_cols: N, ..MacroConfig::default() };
    let mut group = MacroGroup::new(2, config, seed + 1);
    let op = group.load_matrix(&a).expect("load");
    let x = group.solve_inv(op, &b).expect("inv");
    vector::rel_error(&x, &lu::solve(&a, &b).expect("lu"))
}

fn main() {
    println!("# Ablation 1: MVM error vs weight bits (all other noise at paper defaults)");
    println!("{:>6} {:>12}", "bits", "rel.err %");
    for bits in [2u32, 3, 4, 5, 6, 8] {
        let cfg = NonidealityConfig { weight_bits: bits, ..NonidealityConfig::paper_default() };
        println!("{:>6} {:>12.2}", bits, 100.0 * mvm_error(cfg, 60));
    }

    println!("\n# Ablation 2: MVM error vs read noise (4-bit weights)");
    println!("{:>8} {:>12}", "σ_G/G %", "rel.err %");
    for noise in [0.0, 0.005, 0.01, 0.02, 0.05] {
        let cfg = NonidealityConfig { read_noise_rel: noise, ..NonidealityConfig::paper_default() };
        println!("{:>8.1} {:>12.2}", 100.0 * noise, 100.0 * mvm_error(cfg, 61));
    }

    println!("\n# Ablation 3: MVM error vs op-amp offset (4-bit weights)");
    println!("{:>9} {:>12}", "σ_os mV", "rel.err %");
    for off in [0.0, 1e-5, 1e-4, 5e-4, 1e-3] {
        let cfg =
            NonidealityConfig { opamp_offset_sigma: off, ..NonidealityConfig::paper_default() };
        println!("{:>9.2} {:>12.2}", 1000.0 * off, 100.0 * mvm_error(cfg, 62));
    }

    println!("\n# Ablation 4: write-verify residual (programming error, 4-bit)");
    println!("{:>10} {:>12}", "σ levels", "rel.err %");
    for sigma in [0.0, 0.2, 0.4, 0.8] {
        let cfg = NonidealityConfig {
            programming: ProgrammingMode::Direct { sigma_levels: sigma },
            ..NonidealityConfig::paper_default()
        };
        println!("{:>10.1} {:>12.2}", sigma, 100.0 * mvm_error(cfg, 63));
    }

    println!("\n# Ablation 5: INV error vs condition number (paper defaults, 4-bit)");
    println!("{:>8} {:>12}", "κ₂(A)", "rel.err %");
    for cond in [2.0, 5.0, 10.0, 20.0, 50.0] {
        println!("{:>8.0} {:>12.2}", cond, 100.0 * inv_error_vs_cond(cond, 64));
    }

    println!("\n# Ablation 6: MVM error vs wire resistance (IR drop; paper neglects it)");
    println!("{:>10} {:>12}", "R_wire Ω", "rel.err %");
    for r in [0.0, 2.0, 10.0, 30.0, 100.0] {
        let cfg = NonidealityConfig { wire_resistance: r, ..NonidealityConfig::paper_default() };
        println!("{:>10.1} {:>12.2}", r, 100.0 * mvm_error(cfg, 66));
    }

    println!("\n# Ablation 7: differential vs offset signed encoding (static mapping error)");
    let mut rng = random::seeded_rng(65);
    let a = random::gaussian_matrix(&mut rng, N, N);
    let q = LevelQuantizer::paper_default();
    for (name, enc) in
        [("differential", SignedEncoding::Differential), ("offset", SignedEncoding::Offset)]
    {
        let mapped = ConductanceMapper::new(q.clone(), enc).map(&a).expect("map");
        let err = (&mapped.dequantize() - &a).fro_norm() / a.fro_norm();
        println!("{name:>14}: mapping error {:.2} %", 100.0 * err);
    }
}
