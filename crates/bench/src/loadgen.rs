//! Closed- and open-loop load generators for the serving observatory.
//!
//! Both generators hammer one loaded operator on a live
//! [`RuntimeServer`](gramc_runtime::RuntimeServer) with single-request MVM
//! batches (`submit_mvm_batch` with one vector — one job per request, so
//! per-request latency is well defined) and record end-to-end
//! `submit → wait` latency into a shared
//! [`LatencyHistogram`](gramc_telemetry::LatencyHistogram):
//!
//! * **Closed loop** ([`closed_loop`]): `clients` threads each run
//!   submit→wait back-to-back until the deadline. Offered load adapts to
//!   service rate, so this measures *sustained throughput* and latency
//!   under a fixed concurrency level.
//! * **Open loop** ([`open_loop`]): a pacer thread submits at a fixed
//!   arrival rate regardless of completions (the queue absorbs bursts;
//!   admission control rejects past the bound) while waiter threads retire
//!   handles. This is the coordinated-omission-free view: latency at an
//!   *offered* rate, plus the rejection rate once the queue saturates.
//!   Sweeping the rate locates the saturation knee.
//!
//! [`LoadReport::sample`] converts a run into a [`timing::Sample`] row for
//! `BENCH_kernels.json`; [`LoadReport::meta`] yields the latency/throughput
//! key-value pairs (p50/p99/p999, throughput, rejection rate) for the
//! report's `meta` block.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use gramc_runtime::{JobHandle, OperatorHandle, Runtime, RuntimeError};
use gramc_telemetry::{HistogramSnapshot, LatencyHistogram};

use crate::timing::Sample;

/// Outcome of one load-generation run at one concurrency level (closed
/// loop) or one arrival rate (open loop).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Row name, e.g. `serving_closed_c4` or `serving_open_2000rps`.
    pub name: String,
    /// Requests that completed (waited to success) inside the window.
    pub completed: u64,
    /// Requests rejected by admission control
    /// ([`RuntimeError::QueueFull`]).
    pub rejected: u64,
    /// Wall-clock measurement window in seconds.
    pub elapsed_s: f64,
    /// End-to-end submit→wait latency distribution.
    pub latency: HistogramSnapshot,
}

impl LoadReport {
    /// Sustained throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.completed as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Fraction of submissions rejected by admission control.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.completed + self.rejected;
        if offered > 0 {
            self.rejected as f64 / offered as f64
        } else {
            0.0
        }
    }

    /// This run as a `BENCH_kernels.json` row: `iters` is completed
    /// requests, `mean_ns` the mean latency and `min_ns` the p50 estimate
    /// (a robust "typical request" floor for regression checks).
    pub fn sample(&self) -> Sample {
        Sample {
            name: self.name.clone(),
            iters: self.completed.max(1),
            mean_ns: self.latency.mean_ns(),
            min_ns: self.latency.p50_ns() as f64,
        }
    }

    /// Latency/throughput metadata rows (`<name>_p50_us`, …) for the
    /// report's `meta` block.
    pub fn meta(&self) -> Vec<(String, String)> {
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
        vec![
            (format!("{}_p50_us", self.name), us(self.latency.p50_ns())),
            (format!("{}_p99_us", self.name), us(self.latency.p99_ns())),
            (format!("{}_p999_us", self.name), us(self.latency.p999_ns())),
            (format!("{}_throughput_rps", self.name), format!("{:.0}", self.throughput_rps())),
            (format!("{}_completed", self.name), format!("{}", self.completed)),
            (format!("{}_rejected", self.name), format!("{}", self.rejected)),
            (format!("{}_rejection_rate", self.name), format!("{:.4}", self.rejection_rate())),
        ]
    }
}

/// One submit→wait round trip, recorded into `hist` on success.
///
/// Returns `Ok(true)` on completion, `Ok(false)` on a
/// [`RuntimeError::QueueFull`] rejection, and any other error verbatim
/// (load generation treats those as fatal harness bugs).
fn one_request(
    rt: &Runtime,
    op: OperatorHandle,
    x: &[f64],
    hist: &LatencyHistogram,
) -> Result<bool, RuntimeError> {
    let t0 = Instant::now();
    match rt.submit_mvm_batch(op, vec![x.to_vec()]) {
        Ok(handle) => {
            handle.wait()?;
            hist.record_ns(t0.elapsed().as_nanos() as u64);
            Ok(true)
        }
        Err(RuntimeError::QueueFull { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Closed-loop run: `clients` threads submit-and-wait back-to-back against
/// `op` for `duration`. The runtime must already have a live
/// [`RuntimeServer`](gramc_runtime::RuntimeServer) attached — nothing here
/// drains queues.
///
/// # Panics
///
/// Panics if a request fails with anything other than queue rejection
/// (harness misuse: dead handle, non-finite input, …).
pub fn closed_loop(
    rt: &Arc<Runtime>,
    op: OperatorHandle,
    x: &[f64],
    clients: usize,
    duration: Duration,
) -> LoadReport {
    let hist = LatencyHistogram::new();
    let rejected = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let (rt, hist, rejected) = (Arc::clone(rt), &hist, &rejected);
            scope.spawn(move || {
                while started.elapsed() < duration {
                    match one_request(&rt, op, x, hist) {
                        Ok(true) => {}
                        Ok(false) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            // Closed-loop clients back off briefly on
                            // rejection instead of hot-spinning the
                            // admission check.
                            std::thread::sleep(Duration::from_micros(50));
                        }
                        Err(e) => panic!("closed-loop request failed: {e}"),
                    }
                }
            });
        }
    });
    let latency = hist.snapshot();
    LoadReport {
        name: format!("serving_closed_c{clients}"),
        completed: latency.count,
        rejected: rejected.load(Ordering::Relaxed),
        elapsed_s: started.elapsed().as_secs_f64(),
        latency,
    }
}

/// Open-loop run: a pacer thread submits at `rate_rps` fixed arrival rate
/// for `duration` while `waiters` threads retire the handles. Rejections
/// ([`RuntimeError::QueueFull`]) count against the offered load without
/// slowing the pacer. After the window closes, in-flight requests are
/// drained (and still recorded) so the tail is not censored.
///
/// # Panics
///
/// Panics if submission or wait fails with anything other than queue
/// rejection.
pub fn open_loop(
    rt: &Arc<Runtime>,
    op: OperatorHandle,
    x: &[f64],
    rate_rps: f64,
    duration: Duration,
    waiters: usize,
) -> LoadReport {
    assert!(rate_rps > 0.0, "open_loop needs a positive arrival rate");
    let period = Duration::from_secs_f64(1.0 / rate_rps);
    let hist = LatencyHistogram::new();
    let rejected = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(Instant, JobHandle)>();
    let rx = Mutex::new(rx);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..waiters.max(1) {
            let (rx, hist) = (&rx, &hist);
            scope.spawn(move || loop {
                // Hold the receiver lock only for the dequeue: waits run
                // unlocked so slow jobs don't serialize the pool.
                let next = rx.lock().expect("waiter lock").recv();
                match next {
                    Ok((t0, handle)) => {
                        handle.wait().expect("open-loop request failed");
                        hist.record_ns(t0.elapsed().as_nanos() as u64);
                    }
                    Err(_) => return, // pacer hung up: window over
                }
            });
        }
        // Pacer: submit on the fixed schedule; never block on completions.
        let mut next_tick = started;
        while started.elapsed() < duration {
            let t0 = Instant::now();
            match rt.submit_mvm_batch(op, vec![x.to_vec()]) {
                Ok(handle) => tx.send((t0, handle)).expect("waiter pool alive"),
                Err(RuntimeError::QueueFull { .. }) => {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("open-loop submit failed: {e}"),
            }
            next_tick += period;
            let now = Instant::now();
            if next_tick > now {
                std::thread::sleep(next_tick - now);
            }
            // Behind schedule: submit immediately (no catch-up burst —
            // a saturated host degrades toward closed-loop pacing).
        }
        drop(tx); // waiters drain in-flight handles, then exit
    });
    let latency = hist.snapshot();
    LoadReport {
        name: format!("serving_open_{}rps", rate_rps.round() as u64),
        completed: latency.count,
        rejected: rejected.load(Ordering::Relaxed),
        elapsed_s: started.elapsed().as_secs_f64(),
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gramc_core::tiling::TileMapping;
    use gramc_core::MacroConfig;
    use gramc_linalg::Matrix;
    use gramc_runtime::{Placement, RuntimeServer};

    fn serving_fixture() -> (Arc<Runtime>, RuntimeServer, OperatorHandle) {
        let rt = Arc::new(Runtime::new(2, 2, MacroConfig::small_ideal(8), 11));
        let server = RuntimeServer::start(rt.clone());
        let a = Matrix::identity(8);
        let (op, loaded) =
            rt.submit_load(&a, TileMapping::FourBit, Placement::LeastLoaded).expect("load");
        loaded.wait().expect("load completes");
        (rt, server, op)
    }

    #[test]
    fn closed_loop_completes_requests_and_reports() {
        let (rt, server, op) = serving_fixture();
        let x = vec![1.0; 8];
        let report = closed_loop(&rt, op, &x, 2, Duration::from_millis(120));
        assert!(report.completed > 0, "no requests completed");
        assert_eq!(report.completed, report.latency.count);
        assert!(report.throughput_rps() > 0.0);
        let sample = report.sample();
        assert_eq!(sample.name, "serving_closed_c2");
        assert!(sample.mean_ns > 0.0);
        let meta = report.meta();
        assert!(meta.iter().any(|(k, _)| k.ends_with("_p999_us")));
        server.shutdown();
    }

    #[test]
    fn open_loop_holds_the_arrival_schedule() {
        let (rt, server, op) = serving_fixture();
        let x = vec![0.5; 8];
        let report = open_loop(&rt, op, &x, 200.0, Duration::from_millis(200), 2);
        // 200 rps over 200 ms ≈ 40 arrivals; allow wide slack for CI jitter
        // but require the pacer actually paced (i.e. did not burst-submit
        // thousands or stall at zero).
        let offered = report.completed + report.rejected;
        assert!((5..=120).contains(&(offered as usize)), "offered {offered} arrivals");
        assert!(report.completed > 0);
        server.shutdown();
    }
}
