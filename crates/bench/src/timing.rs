//! Minimal self-calibrating timing harness and JSON report writer.
//!
//! The build environment has no crates.io access, so the kernel timers are
//! plain `harness = false` bench binaries built on this module instead of
//! criterion: warm-up, iteration-count calibration to a target wall time,
//! then mean/min statistics over batched runs.

use std::fmt::Write as _;
use std::time::Instant;

/// Statistics for one timed kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Kernel label (e.g. `matmul_512`).
    pub name: String,
    /// Total iterations measured (across all batches).
    pub iters: u64,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Fastest single batch, per iteration, in nanoseconds.
    pub min_ns: f64,
}

impl Sample {
    /// Mean wall time per iteration in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns / 1e6
    }
}

/// Times `f`, auto-calibrating the iteration count so the measurement phase
/// takes roughly `target_ms` milliseconds (min 1 iteration, max `max_iters`).
///
/// Returns per-iteration statistics. The closure's return value is consumed
/// with [`std::hint::black_box`] so the optimizer cannot elide the kernel.
pub fn time<T, F: FnMut() -> T>(name: &str, target_ms: f64, max_iters: u64, mut f: F) -> Sample {
    // Warm-up + calibration probe.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let probe = t0.elapsed().as_secs_f64().max(1e-9);

    let budget = target_ms / 1e3;
    let iters = ((budget / probe).ceil() as u64).clamp(1, max_iters);
    // Split into up to 5 batches so `min_ns` has some resolution.
    let batches = iters.min(5);
    let per_batch = iters.div_ceil(batches);

    let mut total = 0.0;
    let mut done = 0u64;
    let mut min_per_iter = f64::INFINITY;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..per_batch {
            std::hint::black_box(f());
        }
        let dt = t.elapsed().as_secs_f64();
        total += dt;
        done += per_batch;
        min_per_iter = min_per_iter.min(dt / per_batch as f64);
    }
    Sample {
        name: name.to_string(),
        iters: done,
        mean_ns: total / done as f64 * 1e9,
        min_ns: min_per_iter * 1e9,
    }
}

/// Collects samples and prints them as an aligned table.
#[derive(Debug, Default)]
pub struct Reporter {
    samples: Vec<Sample>,
}

impl Reporter {
    /// Empty reporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` (see [`time`]) and records + prints the sample.
    pub fn bench<T, F: FnMut() -> T>(&mut self, name: &str, f: F) -> &Sample {
        let s = time(name, 300.0, 1_000_000, f);
        println!(
            "{:<44} {:>12.3} ms/iter  ({} iters, min {:.3} ms)",
            s.name,
            s.mean_ms(),
            s.iters,
            s.min_ns / 1e6
        );
        self.samples.push(s);
        self.samples.last().expect("just pushed")
    }

    /// All recorded samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Mean time of a recorded sample in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `name` was never benched.
    pub fn mean_ms(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no sample named {name}"))
            .mean_ms()
    }
}

/// Serializes samples (plus free-form metadata) as a JSON document.
///
/// Hand-rolled because serde is unavailable offline; the output is plain
/// `{"meta": {...}, "kernels": {name: {mean_ms, min_ms, iters}}}`.
pub fn to_json(meta: &[(&str, String)], samples: &[Sample]) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut out = String::from("{\n  \"meta\": {\n");
    for (i, (k, v)) in meta.iter().enumerate() {
        let comma = if i + 1 < meta.len() { "," } else { "" };
        // Numbers pass through unquoted; everything else is a string.
        if v.parse::<f64>().is_ok() {
            let _ = writeln!(out, "    \"{}\": {}{}", esc(k), v, comma);
        } else {
            let _ = writeln!(out, "    \"{}\": \"{}\"{}", esc(k), esc(v), comma);
        }
    }
    out.push_str("  },\n  \"kernels\": {\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"mean_ms\": {:.6}, \"min_ms\": {:.6}, \"iters\": {}}}{}",
            esc(&s.name),
            s.mean_ns / 1e6,
            s.min_ns / 1e6,
            s.iters,
            comma
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// Reads one kernel's `mean_ms` back out of a [`to_json`]-shaped document.
///
/// Hand-rolled for the same offline reason as the writer; tolerant of
/// surrounding whitespace and key order. Returns `None` when the kernel is
/// absent or the number is malformed — callers treat that as "no baseline".
pub fn read_mean_ms(json: &str, kernel: &str) -> Option<f64> {
    let key = format!("\"{kernel}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let rest = &rest[rest.find("\"mean_ms\":")? + "\"mean_ms\":".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Reads one metadata key's value back out of a [`to_json`]-shaped
/// document (the sibling of [`read_mean_ms`] for the `meta` section).
///
/// The value comes back as its raw text with any surrounding quotes
/// stripped, so numbers and strings read uniformly. Returns `None` when
/// the document has no `meta` section or the key is absent from it —
/// callers treat that as "not annotated".
pub fn read_meta_value(json: &str, key: &str) -> Option<String> {
    // Stay inside the meta object so a kernel of the same name (the
    // kernels section always follows meta) can never shadow the key.
    let meta = &json[json.find("\"meta\"")?..];
    let meta = &meta[..meta.find("\"kernels\"").unwrap_or(meta.len())];
    let pat = format!("\"{key}\":");
    let rest = &meta[meta.find(&pat)? + pat.len()..];
    let line = rest.lines().next()?;
    let value = line.trim().trim_end_matches(',').trim().trim_matches('"');
    Some(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_positive_stats() {
        let s = time("noop_sum", 5.0, 10_000, || (0..100u64).sum::<u64>());
        assert!(s.mean_ns > 0.0);
        assert!(s.min_ns > 0.0);
        assert!(s.iters >= 1);
    }

    #[test]
    fn json_shape_is_wellformed() {
        let samples = vec![Sample { name: "k\"1".into(), iters: 3, mean_ns: 1.5e6, min_ns: 1.0e6 }];
        let j = to_json(&[("dim", "128".into()), ("host", "ci".into())], &samples);
        assert!(j.contains("\"dim\": 128"));
        assert!(j.contains("\"host\": \"ci\""));
        assert!(j.contains("\"k\\\"1\""));
        assert!(j.contains("\"mean_ms\": 1.500000"));
        // Balanced braces.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn read_mean_ms_round_trips_through_to_json() {
        let samples = vec![
            Sample { name: "matmul_512".into(), iters: 10, mean_ns: 37.5e6, min_ns: 34.0e6 },
            Sample { name: "lu".into(), iters: 3, mean_ns: 2.0e6, min_ns: 1.5e6 },
        ];
        let j = to_json(&[("bench", "x".into())], &samples);
        assert_eq!(read_mean_ms(&j, "matmul_512"), Some(37.5));
        assert_eq!(read_mean_ms(&j, "lu"), Some(2.0));
        assert_eq!(read_mean_ms(&j, "absent"), None);
        assert_eq!(read_mean_ms("not json", "matmul_512"), None);
    }

    #[test]
    fn read_meta_value_round_trips_through_to_json() {
        let samples =
            vec![Sample { name: "overhead_only".into(), iters: 1, mean_ns: 1e6, min_ns: 1e6 }];
        let meta = [
            ("bench", "bench_kernels".into()),
            ("host_cpus", "4".into()),
            ("overhead_only", "true".into()),
        ];
        let j = to_json(&meta, &samples);
        assert_eq!(read_meta_value(&j, "bench").as_deref(), Some("bench_kernels"));
        assert_eq!(read_meta_value(&j, "host_cpus").as_deref(), Some("4"));
        // A kernel named like a meta key must not shadow the meta section.
        assert_eq!(read_meta_value(&j, "overhead_only").as_deref(), Some("true"));
        assert_eq!(read_meta_value(&j, "absent"), None);
        assert_eq!(read_meta_value("not json", "bench"), None);
    }

    #[test]
    fn reporter_lookup_by_name() {
        let mut r = Reporter::new();
        r.bench("tiny", || 1 + 1);
        assert!(r.mean_ms("tiny") >= 0.0);
        assert_eq!(r.samples().len(), 1);
    }
}
