//! A minimal recursive-descent JSON parser for the offline analysis
//! tooling (`trace_analyze`). The container has no serde, and the
//! artifacts it reads — `TRACE_serving.json` and the metrics JSONL
//! stream — are machine-written by this workspace, so the parser only
//! needs honest JSON: objects, arrays, strings with the two escapes the
//! writers emit, numbers (including the `{:e}` scientific form), bools
//! and null. It still *validates* — a truncated or malformed artifact is
//! a typed [`JsonError`], which is exactly what CI's `--check` mode wants
//! to catch.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the artifacts' counters stay
    /// well under 2^53, so the round-trip is exact).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` — key order is irrelevant to the tooling and
    /// deterministic iteration keeps report output stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number this value holds, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number at `key`, if present (sugar for `get` + `as_f64`).
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }

    /// The string this value holds, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
///
/// # Errors
///
/// [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek().ok_or_else(|| self.err("unexpected end of input"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            // Copy the raw run up to the next delimiter. The input is a
            // valid &str and both delimiters are ASCII, so the run cannot
            // split a multi-byte character.
            let start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|&c| c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("&str chunk"));
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                _ => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'/') => s.push('/'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_shapes() {
        let v = parse(
            r#"{"name":"queued:rider","ts":1.5,"dur":2e3,"args":{"a":0,"b":3,"req":7},
                "flags":[true,false,null],"s":"t\"x"}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("queued:rider"));
        assert_eq!(v.num("dur"), Some(2000.0));
        assert_eq!(v.get("args").unwrap().num("req"), Some(7.0));
        assert_eq!(v.get("flags").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str(), Some("t\"x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "12 34", "{\"a\":1}x", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_cover_scientific_notation() {
        assert_eq!(parse("1.25e-3").unwrap().as_f64(), Some(0.00125));
        assert_eq!(parse("-7").unwrap().as_f64(), Some(-7.0));
    }
}
