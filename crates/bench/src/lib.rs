//! # gramc-bench
//!
//! Benchmark harness and figure-regeneration binaries for the GRAMC
//! reproduction. Each figure of the paper has a binary that prints the
//! series/rows the paper plots (see DESIGN.md §5 and EXPERIMENTS.md):
//!
//! * `fig1_write_verify` — SET/RESET level-vs-pulse staircases (Fig. 1b/1c),
//! * `fig4_validation` — MVM/INV/PINV/EGV scatter + relative errors (Fig. 4),
//! * `fig5_lenet` — LeNet-5 accuracy at INT4/INT8/FP32 (Fig. 5),
//! * `ablation_nonideal` — per-error-source sensitivity sweeps,
//! * `scaling_model` — analog-vs-digital latency/energy model (supplemental).
//!
//! Kernel timers (`cargo bench -p gramc-bench`) are plain `harness = false`
//! binaries built on [`timing`] (criterion is unavailable offline); the
//! `bench_kernels` binary additionally writes the repo-root
//! `BENCH_kernels.json` perf baseline consumed by future PRs.

#![warn(missing_docs)]

pub mod json;
pub mod loadgen;
pub mod timing;

use gramc_linalg::vector;

/// Formats an `(ideal, measured)` scatter series as aligned text rows,
/// with a summary relative-error line — the textual equivalent of the
/// paper's Fig. 4 panels.
pub fn format_scatter(name: &str, ideal: &[f64], measured: &[f64], max_rows: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {name}\n"));
    out.push_str(&format!("{:>14} {:>14}\n", "ideal", "analog"));
    for (i, (a, b)) in ideal.iter().zip(measured).enumerate() {
        if i >= max_rows {
            out.push_str(&format!("  … ({} more rows)\n", ideal.len() - max_rows));
            break;
        }
        out.push_str(&format!("{a:>14.6} {b:>14.6}\n"));
    }
    out.push_str(&format!(
        "relative error ‖analog − ideal‖/‖ideal‖ = {:.2} %\n",
        100.0 * vector::rel_error(measured, ideal)
    ));
    out
}

/// Pearson correlation between two equal-length series (scatter tightness).
pub fn correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum::<f64>() / n;
    let sa = (a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n).sqrt();
    let sb = (b.iter().map(|x| (x - mb) * (x - mb)).sum::<f64>() / n).sqrt();
    if sa == 0.0 || sb == 0.0 {
        0.0
    } else {
        cov / (sa * sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_format_contains_summary() {
        let s = format_scatter("test", &[1.0, 2.0], &[1.1, 1.9], 10);
        assert!(s.contains("relative error"));
        assert!(s.contains("test"));
    }

    #[test]
    fn correlation_of_identical_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((correlation(&a, &a) - 1.0).abs() < 1e-12);
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((correlation(&a, &b) + 1.0).abs() < 1e-12);
    }
}
