use gramc_device::*;
use rand::SeedableRng;
fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let q = LevelQuantizer::paper_default();
    for step in [0.01, 0.02] {
        let mut cell = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none());
        let mut vg = 0.72;
        print!("SET vg_step={step}: ");
        for _ in 0..30 {
            cell.set_pulse(vg, 2.0, 30e-9, &mut rng);
            vg += step;
            print!("{} ", q.level_of(cell.read_ideal()));
        }
        println!();
    }
    for step in [0.02, 0.03] {
        // Start from exactly level 15 (write-verified state).
        let mut cell = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none());
        // crude approximate program to level 15 via feedback ramp
        let mut vg = 0.72;
        while cell.read_ideal() < 100e-6 && vg < 1.6 {
            cell.set_pulse(vg, 2.0, 30e-9, &mut rng);
            vg += 0.01;
        }
        print!("RESET from level {} vsl_step={step}: ", q.level_of(cell.read_ideal()));
        let mut vsl = 0.8;
        for _ in 0..30 {
            cell.reset_pulse(3.2, vsl, 30e-9, &mut rng);
            vsl += step;
            print!("{} ", q.level_of(cell.read_ideal()));
        }
        println!();
    }
}
