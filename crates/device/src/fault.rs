//! Device fault models for fault-injection campaigns.
//!
//! Crosspoint arrays fail in a handful of canonical ways (Sun & Ielmini,
//! "Tutorial: Analog Matrix Computing with Crosspoint Resistive Memory
//! Arrays"): cells stuck at the conductance extremes (forming failures,
//! shorted selectors), slow conductance drift of the programmed state, and
//! transient read disturb. This module defines a *seeded, deterministic*
//! [`FaultPlan`]: given a fault configuration and a seed, the same cells
//! fail the same way on every run, so fault campaigns are reproducible and
//! recovery logic can be tested bit-for-bit.
//!
//! The plan itself is pure data — applying it to reads is the array
//! layer's job (`gramc-array` under its `fault-inject` feature).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How one faulty cell misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The cell always reads at the device's maximum conductance
    /// (`G_on`), regardless of what was programmed.
    StuckAtOn,
    /// The cell always reads at the device's minimum conductance
    /// (`G_off`).
    StuckAtOff,
    /// The programmed conductance relaxes toward `G_off` with the plan's
    /// time constant: `G(t) = G_off + (G − G_off)·exp(−t/τ)`.
    Drift,
}

/// Fault rates and model parameters for sampling a [`FaultPlan`].
///
/// All rates are per-cell probabilities; the default is fault-free (every
/// rate 0), which samples an empty plan — installing it changes nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability of a cell being stuck at `G_on`.
    pub stuck_on_rate: f64,
    /// Probability of a cell being stuck at `G_off`.
    pub stuck_off_rate: f64,
    /// Probability of a cell drifting over time.
    pub drift_rate: f64,
    /// Drift time constant τ in seconds (shared by all drifting cells).
    pub drift_tau_s: f64,
    /// Probability per noisy read that a cell's sample is disturbed.
    pub read_disturb_prob: f64,
    /// Relative conductance dip of a disturb event (`g → g·(1 − frac)`).
    pub read_disturb_frac: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            stuck_on_rate: 0.0,
            stuck_off_rate: 0.0,
            drift_rate: 0.0,
            drift_tau_s: 1.0,
            read_disturb_prob: 0.0,
            read_disturb_frac: 0.05,
        }
    }
}

impl FaultConfig {
    /// Stuck-at faults only, split evenly between `G_on` and `G_off`.
    pub fn stuck_at(rate: f64) -> Self {
        Self { stuck_on_rate: rate / 2.0, stuck_off_rate: rate / 2.0, ..Self::default() }
    }

    /// Whether every rate is zero (a sampled plan would be empty).
    pub fn is_fault_free(&self) -> bool {
        self.stuck_on_rate <= 0.0
            && self.stuck_off_rate <= 0.0
            && self.drift_rate <= 0.0
            && self.read_disturb_prob <= 0.0
    }
}

/// A seeded assignment of faults to the cells of one `rows × cols` array.
///
/// Sampling is deterministic: one uniform draw per cell in row-major
/// order, so the same `(shape, config, seed)` always yields the same
/// plan. With all rates zero the plan is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    rows: usize,
    cols: usize,
    faults: Vec<Option<FaultKind>>,
    config: FaultConfig,
}

impl FaultPlan {
    /// Samples a plan for a `rows × cols` array from `config` and `seed`.
    pub fn sample(rows: usize, cols: usize, config: &FaultConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let p_on = config.stuck_on_rate.max(0.0);
        let p_off = config.stuck_off_rate.max(0.0);
        let p_drift = config.drift_rate.max(0.0);
        let faults = (0..rows * cols)
            .map(|_| {
                let u: f64 = rng.gen();
                if u < p_on {
                    Some(FaultKind::StuckAtOn)
                } else if u < p_on + p_off {
                    Some(FaultKind::StuckAtOff)
                } else if u < p_on + p_off + p_drift {
                    Some(FaultKind::Drift)
                } else {
                    None
                }
            })
            .collect();
        Self { rows, cols, faults, config: config.clone() }
    }

    /// An explicit plan from a fault list (tests and targeted campaigns).
    pub fn from_faults(
        rows: usize,
        cols: usize,
        faults: &[(usize, usize, FaultKind)],
        config: FaultConfig,
    ) -> Self {
        let mut grid = vec![None; rows * cols];
        for &(i, j, kind) in faults {
            assert!(i < rows && j < cols, "fault ({i},{j}) outside {rows}x{cols} array");
            grid[i * cols + j] = Some(kind);
        }
        Self { rows, cols, faults: grid, config }
    }

    /// Plan shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The configuration the plan was sampled from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fault (if any) assigned to cell `(row, col)`.
    pub fn fault_at(&self, row: usize, col: usize) -> Option<FaultKind> {
        if row < self.rows && col < self.cols {
            self.faults[row * self.cols + col]
        } else {
            None
        }
    }

    /// Number of faulty cells in the plan.
    pub fn fault_count(&self) -> usize {
        self.faults.iter().filter(|f| f.is_some()).count()
    }

    /// Number of stuck-at cells (either polarity).
    pub fn stuck_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| matches!(f, Some(FaultKind::StuckAtOn | FaultKind::StuckAtOff)))
            .count()
    }

    /// Whether the plan has no cell faults and no read disturb — installing
    /// it leaves the array's behavior bit-identical.
    pub fn is_empty(&self) -> bool {
        self.fault_count() == 0 && self.config.read_disturb_prob <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let cfg = FaultConfig::stuck_at(0.1);
        let a = FaultPlan::sample(16, 16, &cfg, 42);
        let b = FaultPlan::sample(16, 16, &cfg, 42);
        assert_eq!(a, b);
        let c = FaultPlan::sample(16, 16, &cfg, 43);
        assert_ne!(a, c, "different seeds should (overwhelmingly) differ");
    }

    #[test]
    fn zero_rate_plan_is_empty() {
        let plan = FaultPlan::sample(32, 32, &FaultConfig::default(), 7);
        assert!(plan.is_empty());
        assert_eq!(plan.fault_count(), 0);
    }

    #[test]
    fn rates_produce_roughly_proportional_counts() {
        let cfg = FaultConfig { stuck_on_rate: 0.05, stuck_off_rate: 0.05, ..Default::default() };
        let plan = FaultPlan::sample(64, 64, &cfg, 11);
        let n = plan.fault_count();
        // 10% of 4096 cells, loose 3-sigma-ish band.
        assert!((250..=570).contains(&n), "fault count {n} far from expectation");
        assert_eq!(plan.stuck_count(), n);
    }

    #[test]
    fn explicit_faults_land_where_placed() {
        let plan = FaultPlan::from_faults(
            4,
            4,
            &[(0, 0, FaultKind::StuckAtOn), (3, 2, FaultKind::Drift)],
            FaultConfig::default(),
        );
        assert_eq!(plan.fault_at(0, 0), Some(FaultKind::StuckAtOn));
        assert_eq!(plan.fault_at(3, 2), Some(FaultKind::Drift));
        assert_eq!(plan.fault_at(1, 1), None);
        assert_eq!(plan.fault_count(), 2);
    }
}
