//! Retention and endurance degradation models.
//!
//! The paper's write-verify scheme guarantees the state *at programming
//! time*; what happens afterwards is governed by retention (spontaneous
//! filament relaxation) and endurance (cycling-induced window collapse).
//! These models let experiments ask "how long does a programmed matrix stay
//! inside its verify band?" — the operational question for any deployed AMC
//! system, and the paper's implicit assumption that it does.
//!
//! * **Retention** — the gap relaxes toward its thermal-equilibrium value
//!   with a stretched-exponential law
//!   `g(t) = g_eq + (g₀ − g_eq)·exp(−(t/τ)^β)`, the standard empirical form
//!   for filamentary RRAM (β ≈ 0.3–0.5).
//! * **Endurance** — after `N` SET/RESET cycles the usable conductance
//!   window shrinks: `G_max(N) = G_max / (1 + (N/N₀)^γ)`-style soft
//!   degradation of the low-gap bound.

use crate::stanford_pku::RramDevice;

/// Stretched-exponential retention model.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionModel {
    /// Equilibrium gap the filament relaxes toward, nm (mid-window).
    pub gap_equilibrium: f64,
    /// Relaxation time constant at operating temperature, seconds.
    pub tau: f64,
    /// Stretch exponent β ∈ (0, 1].
    pub beta: f64,
}

impl Default for RetentionModel {
    fn default() -> Self {
        // τ = 10⁷ s (~4 months) at operating temperature, β = 0.4: a
        // mid-grade oxide RRAM retention corner.
        Self { gap_equilibrium: 0.9, tau: 1e7, beta: 0.4 }
    }
}

impl RetentionModel {
    /// Gap after `elapsed` seconds of unbiased storage, starting from
    /// `gap0`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed < 0`.
    pub fn gap_after(&self, gap0: f64, elapsed: f64) -> f64 {
        assert!(elapsed >= 0.0, "elapsed time must be non-negative");
        if elapsed == 0.0 {
            return gap0;
        }
        let decay = (-(elapsed / self.tau).powf(self.beta)).exp();
        self.gap_equilibrium + (gap0 - self.gap_equilibrium) * decay
    }

    /// Applies `elapsed` seconds of retention drift to a device in place.
    pub fn age_device(&self, device: &mut RramDevice, elapsed: f64) {
        let g = self.gap_after(device.gap(), elapsed);
        device.set_gap(g);
    }

    /// Time until a state programmed at `gap0` drifts by `delta_gap` nm
    /// (∞ if it never does — e.g. already at equilibrium).
    pub fn time_to_drift(&self, gap0: f64, delta_gap: f64) -> f64 {
        let total = (gap0 - self.gap_equilibrium).abs();
        if total <= delta_gap || total == 0.0 {
            return f64::INFINITY;
        }
        // Solve |g(t) − g0| = delta: exp(−(t/τ)^β) = 1 − delta/total.
        let frac: f64 = 1.0 - delta_gap / total;
        self.tau * (-frac.ln()).powf(1.0 / self.beta)
    }
}

/// Soft endurance degradation of the conductance window.
#[derive(Debug, Clone, PartialEq)]
pub struct EnduranceModel {
    /// Cycle count at which degradation becomes significant.
    pub n0: f64,
    /// Degradation sharpness exponent.
    pub gamma: f64,
}

impl Default for EnduranceModel {
    fn default() -> Self {
        Self { n0: 1e6, gamma: 1.5 }
    }
}

impl EnduranceModel {
    /// Fraction of the original conductance window still usable after
    /// `cycles` SET/RESET cycles (1.0 = pristine, → 0 as the window
    /// collapses).
    pub fn window_fraction(&self, cycles: u64) -> f64 {
        1.0 / (1.0 + (cycles as f64 / self.n0).powf(self.gamma))
    }

    /// Effective usable level count after `cycles`, given a pristine level
    /// count (rounds down; at least 2 while any window remains).
    pub fn usable_levels(&self, pristine_levels: usize, cycles: u64) -> usize {
        let f = self.window_fraction(cycles);
        ((pristine_levels as f64 * f).floor() as usize).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stanford_pku::DeviceParams;

    #[test]
    fn no_time_no_drift() {
        let r = RetentionModel::default();
        assert_eq!(r.gap_after(0.3, 0.0), 0.3);
    }

    #[test]
    fn drift_is_monotone_toward_equilibrium() {
        let r = RetentionModel::default();
        let mut last = 0.3;
        for t in [1e3, 1e5, 1e7, 1e9] {
            let g = r.gap_after(0.3, t);
            assert!(g > last - 1e-12, "gap should rise toward equilibrium");
            assert!(g <= r.gap_equilibrium + 1e-12);
            last = g;
        }
        // From above equilibrium it falls instead.
        assert!(r.gap_after(1.4, 1e9) < 1.4);
    }

    #[test]
    fn infinite_time_reaches_equilibrium() {
        let r = RetentionModel::default();
        let g = r.gap_after(0.3, 1e15);
        assert!((g - r.gap_equilibrium).abs() < 1e-3);
    }

    #[test]
    fn time_to_drift_is_consistent_with_gap_after() {
        let r = RetentionModel::default();
        let t = r.time_to_drift(0.3, 0.05);
        assert!(t.is_finite());
        let g = r.gap_after(0.3, t);
        assert!(((g - 0.3).abs() - 0.05).abs() < 1e-9, "drift {}", (g - 0.3).abs());
        // Already at equilibrium: never drifts.
        assert!(r.time_to_drift(r.gap_equilibrium, 0.01).is_infinite());
    }

    #[test]
    fn age_device_moves_conductance() {
        let r = RetentionModel::default();
        let mut dev = RramDevice::with_conductance(DeviceParams::default(), 80e-6);
        let g0 = dev.read_conductance();
        r.age_device(&mut dev, 1e8);
        assert!(dev.read_conductance() < g0, "high-G state should decay");
    }

    #[test]
    fn endurance_window_shrinks() {
        let e = EnduranceModel::default();
        assert!(e.window_fraction(0) > 0.999);
        assert!(e.window_fraction(1_000_000) < 0.6);
        assert!(e.window_fraction(100_000_000) < 0.01);
        assert!(e.usable_levels(16, 0) == 16);
        assert!(e.usable_levels(16, 10_000_000) < 16);
        assert!(e.usable_levels(16, u64::MAX / 2) >= 2);
    }
}
