//! The 1-transistor–1-resistor (1T1R) cell.
//!
//! Per the paper (Fig. 1): "For one 1T1R cell, there are three terminals
//! applied with voltages, including bit-line voltage (V_BL), source-line
//! voltage (V_SL) and gate voltage (V_g), to control the write process.
//! During SET process, only V_g is increased step by step, V_SL is grounded
//! and V_BL is applied as V_set. By contrast, the RESET process is controlled
//! by increasing V_SL."
//!
//! The cell solves the series RRAM–NMOS network self-consistently each
//! sub-step of a pulse: the device current `I0·e^{−g/g0}·sinh(V_dev/V0)` is
//! monotone increasing in the device voltage, while the transistor current is
//! monotone decreasing in it (its V_ds — and during RESET also its V_gs —
//! shrinks), so bisection on the shared current always converges.

use rand::Rng;

use crate::nmos::Nmos;
use crate::stanford_pku::{gramc_box_muller, DeviceParams, RramDevice};

/// Noise knobs for a 1T1R cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellNoise {
    /// Gap perturbation (nm, 1σ) added after every programming pulse
    /// (cycle-to-cycle variability).
    pub c2c_gap_sigma: f64,
    /// Relative conductance noise (1σ) on every read.
    pub read_rel_sigma: f64,
}

impl Default for CellNoise {
    fn default() -> Self {
        Self { c2c_gap_sigma: 0.002, read_rel_sigma: 0.01 }
    }
}

impl CellNoise {
    /// A noiseless cell (used by deterministic unit tests).
    pub fn none() -> Self {
        Self { c2c_gap_sigma: 0.0, read_rel_sigma: 0.0 }
    }
}

/// A 1T1R cell: RRAM device in series with its NMOS access transistor.
///
/// # Examples
///
/// ```
/// use gramc_device::{OneTOneR, DeviceParams, Nmos, CellNoise};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut cell = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none());
/// let before = cell.read(&mut rng);
/// cell.set_pulse(1.1, 2.0, 30e-9, &mut rng);
/// assert!(cell.read(&mut rng) > before);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OneTOneR {
    device: RramDevice,
    nmos: Nmos,
    noise: CellNoise,
    pulses_applied: u64,
}

impl OneTOneR {
    /// Creates a cell in the high-resistance state.
    pub fn new(device_params: DeviceParams, nmos: Nmos, noise: CellNoise) -> Self {
        Self { device: RramDevice::new(device_params), nmos, noise, pulses_applied: 0 }
    }

    /// Creates a cell with device-to-device variation applied.
    pub fn with_variation<R: Rng + ?Sized>(
        device_params: DeviceParams,
        nmos: Nmos,
        noise: CellNoise,
        rng: &mut R,
        i0_rel_sigma: f64,
        g0_rel_sigma: f64,
    ) -> Self {
        let device = RramDevice::new(device_params).with_variation(rng, i0_rel_sigma, g0_rel_sigma);
        Self { device, nmos, noise, pulses_applied: 0 }
    }

    /// Immutable access to the underlying device.
    pub fn device(&self) -> &RramDevice {
        &self.device
    }

    /// Seats the device at the gap that yields `conductance` (siemens),
    /// clamped to the physical window. This models an oracle programming
    /// step; the realistic pulse-level path is the write-verify controller
    /// in `gramc-array`.
    pub fn program_conductance(&mut self, conductance: f64) {
        let gap = self.device.params().gap_for_conductance(conductance);
        self.device.set_gap(gap);
    }

    /// Total programming pulses this cell has received (endurance proxy).
    pub fn pulses_applied(&self) -> u64 {
        self.pulses_applied
    }

    /// Noise-free read conductance in siemens.
    pub fn read_ideal(&self) -> f64 {
        self.device.read_conductance()
    }

    /// Read conductance with read noise applied, in siemens.
    pub fn read<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let g = self.device.read_conductance();
        if self.noise.read_rel_sigma == 0.0 {
            g
        } else {
            (g * (1.0 + self.noise.read_rel_sigma * gramc_box_muller(rng))).max(0.0)
        }
    }

    /// Applies one SET pulse: V_BL = `v_bl` (= V_set), V_SL = 0, gate at
    /// `v_g`. The transistor (source grounded at SL) limits the current to
    /// its compliance, so the final conductance tracks `v_g`.
    pub fn set_pulse<R: Rng + ?Sized>(&mut self, v_g: f64, v_bl: f64, width: f64, rng: &mut R) {
        self.pulse(PulsePolarity::Set, v_g, v_bl, width);
        self.finish_pulse(rng);
    }

    /// Applies one RESET pulse: V_SL = `v_sl`, V_BL = 0, gate at `v_g`
    /// (normally held high). The device sees reverse polarity and the
    /// filament dissolves.
    pub fn reset_pulse<R: Rng + ?Sized>(&mut self, v_g: f64, v_sl: f64, width: f64, rng: &mut R) {
        self.pulse(PulsePolarity::Reset, v_g, v_sl, width);
        self.finish_pulse(rng);
    }

    fn finish_pulse<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.pulses_applied += 1;
        if self.noise.c2c_gap_sigma > 0.0 {
            let jitter = self.noise.c2c_gap_sigma * gramc_box_muller(rng);
            self.device.set_gap(self.device.gap() + jitter);
        }
    }

    /// Integrates the series network for one pulse. The voltage divider is
    /// re-solved *every* adaptive sub-step: the access transistor responds
    /// instantaneously, so the device voltage must track the moving gap —
    /// holding it fixed over a finite interval lets Joule heating run away,
    /// which is exactly the failure mode compliance exists to prevent.
    fn pulse(&mut self, polarity: PulsePolarity, v_g: f64, v_drive: f64, width: f64) {
        if v_drive <= 0.0 || width <= 0.0 {
            return;
        }
        let p = self.device.params().clone();
        let max_step_nm = 0.005 * (p.gap_max - p.gap_min);
        let mut remaining = width;
        let mut guard = 0;
        while remaining > 0.0 && guard < 100_000 {
            guard += 1;
            let v_dev = self.solve_device_voltage(polarity, v_g, v_drive);
            let signed_v = match polarity {
                PulsePolarity::Set => v_dev,
                PulsePolarity::Reset => -v_dev,
            };
            let vel = self.device.gap_velocity(signed_v);
            if vel.abs() < 1e-12 {
                break;
            }
            let dt = (max_step_nm / vel.abs()).min(remaining);
            self.device.set_gap(self.device.gap() + vel * dt);
            remaining -= dt;
            let gap = self.device.gap();
            if (gap <= p.gap_min && vel < 0.0) || (gap >= p.gap_max && vel > 0.0) {
                break;
            }
        }
    }

    /// Bisection on the device-voltage magnitude `v ∈ [0, v_drive]` where
    /// device and transistor currents balance.
    fn solve_device_voltage(&self, polarity: PulsePolarity, v_g: f64, v_drive: f64) -> f64 {
        let i_dev = |v: f64| self.device.current(v); // magnitude for v >= 0
        let i_tr = |v_dev: f64| match polarity {
            // SET: source grounded; transistor sees V_ds = v_drive − v_dev.
            PulsePolarity::Set => self.nmos.current(v_g, v_drive - v_dev),
            // RESET: source is the internal node at potential v_dev, so the
            // gate drive degenerates: V_gs = v_g − v_dev.
            PulsePolarity::Reset => self.nmos.current(v_g - v_dev, v_drive - v_dev),
        };
        let mut lo = 0.0_f64;
        let mut hi = v_drive;
        // f(v) = i_dev(v) − i_tr(v) is monotone increasing; find its zero.
        if i_dev(hi) - i_tr(hi) <= 0.0 {
            // Transistor never limits: full drive across the device.
            return hi;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if i_dev(mid) - i_tr(mid) > 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PulsePolarity {
    Set,
    Reset,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::{LevelQuantizer, MICRO_SIEMENS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fresh_cell() -> OneTOneR {
        OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none())
    }

    #[test]
    fn set_pulse_increases_conductance() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut cell = fresh_cell();
        let g0 = cell.read_ideal();
        cell.set_pulse(1.1, 2.0, 30e-9, &mut rng);
        assert!(cell.read_ideal() > g0);
        assert_eq!(cell.pulses_applied(), 1);
    }

    #[test]
    fn higher_gate_voltage_reaches_higher_conductance() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gs = Vec::new();
        for vg in [0.9, 1.1, 1.3] {
            let mut cell = fresh_cell();
            // Several pulses so each cell reaches its compliance equilibrium.
            for _ in 0..8 {
                cell.set_pulse(vg, 2.0, 30e-9, &mut rng);
            }
            gs.push(cell.read_ideal());
        }
        assert!(gs[0] < gs[1] && gs[1] < gs[2], "{gs:?}");
    }

    #[test]
    fn compliance_limits_set_conductance() {
        // With the gate barely on, the cell must stay far from G_max even
        // under a long SET dose.
        let mut rng = StdRng::seed_from_u64(3);
        let mut cell = fresh_cell();
        for _ in 0..50 {
            cell.set_pulse(0.85, 2.0, 30e-9, &mut rng);
        }
        assert!(
            cell.read_ideal() < 50.0 * MICRO_SIEMENS,
            "G = {} µS",
            cell.read_ideal() / MICRO_SIEMENS
        );
    }

    #[test]
    fn reset_pulse_decreases_conductance() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut cell = fresh_cell();
        for _ in 0..10 {
            cell.set_pulse(1.4, 2.0, 30e-9, &mut rng);
        }
        let g_high = cell.read_ideal();
        for _ in 0..10 {
            cell.reset_pulse(3.0, 1.8, 30e-9, &mut rng);
        }
        assert!(cell.read_ideal() < g_high);
    }

    #[test]
    fn full_set_reset_cycle_covers_level_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let q = LevelQuantizer::paper_default();
        let mut cell = fresh_cell();
        // SET ramp to the top.
        let mut vg = 0.75;
        for _ in 0..120 {
            cell.set_pulse(vg, 2.0, 30e-9, &mut rng);
            vg += 0.02;
        }
        let top = q.fractional_level(cell.read_ideal());
        assert!(top >= 14.0, "SET ramp only reached level {top:.2}");
        // RESET ramp back down.
        let mut vsl = 1.0;
        for _ in 0..120 {
            cell.reset_pulse(3.2, vsl, 30e-9, &mut rng);
            vsl += 0.03;
        }
        let bottom = q.fractional_level(cell.read_ideal());
        assert!(bottom <= 1.0, "RESET ramp only reached level {bottom:.2}");
    }

    #[test]
    fn read_noise_has_requested_magnitude() {
        let mut rng = StdRng::seed_from_u64(6);
        let noise = CellNoise { c2c_gap_sigma: 0.0, read_rel_sigma: 0.05 };
        let mut cell = OneTOneR::new(DeviceParams::default(), Nmos::default(), noise);
        let mut rng2 = StdRng::seed_from_u64(7);
        cell.set_pulse(1.2, 2.0, 30e-9, &mut rng2);
        let g_ideal = cell.read_ideal();
        let n = 2000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let g = cell.read(&mut rng);
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!((mean - g_ideal).abs() / g_ideal < 0.01);
        let rel = std / g_ideal;
        assert!((rel - 0.05).abs() < 0.01, "measured rel sigma {rel}");
    }

    #[test]
    fn zero_drive_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut cell = fresh_cell();
        let g0 = cell.read_ideal();
        cell.set_pulse(1.2, 0.0, 30e-9, &mut rng);
        assert_eq!(cell.read_ideal(), g0);
    }
}
