//! Access-transistor model for the 1T1R cell.
//!
//! The paper's write-verify scheme relies on the gate voltage setting the SET
//! compliance current (ref. [7], Gao/Chen/Yu, IEEE EDL 2015). Short-channel
//! NMOS devices are velocity-saturated, so the saturation current is
//! approximately **linear** in the gate overdrive — which is what makes the
//! conductance staircase of Fig. 1(b) linear in the number of V_g steps.

/// Velocity-saturated NMOS model: `I_dsat = k_sat·(V_gs − V_th)`, with a
/// smooth quadratic triode region below `v_dsat`.
///
/// # Examples
///
/// ```
/// use gramc_device::Nmos;
///
/// let t = Nmos::default();
/// // Saturation current is linear in gate overdrive.
/// let i1 = t.current(1.2, 1.5);
/// let i2 = t.current(1.7, 1.5);
/// assert!((i2 - 2.0 * i1).abs() / i1 < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nmos {
    /// Transconductance of the velocity-saturated device, A/V.
    pub k_sat: f64,
    /// Threshold voltage, V.
    pub v_th: f64,
    /// Drain-source voltage at which the channel saturates, V.
    pub v_dsat: f64,
}

impl Default for Nmos {
    fn default() -> Self {
        // k_sat calibrated so the V_g range ≈ 0.75–1.15 V spans SET
        // compliance currents covering the 1–100 µS window with ~1–2 levels
        // per 20 mV gate step (see write-verify calibration in gramc-array),
        // while leaving enough drive at V_g ≈ 3 V for RESET not to be
        // transistor-limited.
        Self { k_sat: 270e-6, v_th: 0.7, v_dsat: 0.3 }
    }
}

impl Nmos {
    /// Drain current for the given gate-source and drain-source voltages.
    ///
    /// Cut-off below threshold; quadratic triode below `v_dsat`; constant
    /// (velocity-saturated) above. Monotone non-decreasing in both arguments,
    /// which the series solver in [`crate::OneTOneR`] relies on.
    pub fn current(&self, v_gs: f64, v_ds: f64) -> f64 {
        if v_gs <= self.v_th || v_ds <= 0.0 {
            return 0.0;
        }
        let i_sat = self.k_sat * (v_gs - self.v_th);
        if v_ds >= self.v_dsat {
            i_sat
        } else {
            let x = v_ds / self.v_dsat;
            i_sat * x * (2.0 - x)
        }
    }

    /// Saturation (compliance) current at gate voltage `v_g` with a grounded
    /// source.
    pub fn compliance(&self, v_g: f64) -> f64 {
        self.current(v_g, self.v_dsat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_below_threshold() {
        let t = Nmos::default();
        assert_eq!(t.current(0.5, 1.0), 0.0);
        assert_eq!(t.current(0.7, 1.0), 0.0);
        assert_eq!(t.current(1.0, 0.0), 0.0);
        assert_eq!(t.current(1.0, -0.5), 0.0);
    }

    #[test]
    fn saturation_is_linear_in_overdrive() {
        let t = Nmos::default();
        let i1 = t.current(1.0, 2.0);
        let i2 = t.current(1.3, 2.0);
        assert!(((i2 - i1) - t.k_sat * 0.3).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_vds() {
        let t = Nmos::default();
        let mut last = 0.0;
        for i in 0..100 {
            let vds = i as f64 * 0.02;
            let cur = t.current(1.2, vds);
            assert!(cur >= last - 1e-15, "non-monotone at vds={vds}");
            last = cur;
        }
    }

    #[test]
    fn triode_continuous_at_vdsat() {
        let t = Nmos::default();
        let below = t.current(1.5, t.v_dsat - 1e-9);
        let above = t.current(1.5, t.v_dsat + 1e-9);
        assert!((below - above).abs() < 1e-9 * t.k_sat);
    }

    #[test]
    fn compliance_equals_saturation_current() {
        let t = Nmos::default();
        assert_eq!(t.compliance(1.3), t.current(1.3, 5.0));
    }
}
