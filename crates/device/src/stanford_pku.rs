//! Stanford-PKU RRAM compact model (Jiang et al., SISPAD 2014 — ref. [6] of
//! the paper), simplified exactly as GRAMC does: "the complex process of ion
//! and vacancy immigration is simplified into the growth of a single domain
//! filament that preserves the underlying physics".
//!
//! The state variable is the tunneling gap `g` between the filament tip and
//! the electrode:
//!
//! * current:       `I(V, g) = I0 · exp(−g/g0) · sinh(V/V0)`
//! * gap dynamics:  `dg/dt  = −ν(V) · sinh(V/V_dyn) · θ(T)`
//!
//! where `ν` is direction-dependent (SET grows the filament / shrinks the
//! gap for `V > 0`; RESET dissolves it for `V < 0`) and `θ(T)` is an
//! Arrhenius acceleration from Joule self-heating.

use rand::Rng;

/// Boltzmann constant over electron charge, in V/K.
const K_B_OVER_Q: f64 = 8.617_333e-5;
/// Ambient temperature in kelvin.
const T_AMBIENT: f64 = 300.0;

/// Physical parameters of the Stanford-PKU compact model.
///
/// The defaults are calibrated (see `calibration` test module and
/// EXPERIMENTS.md) so that the read conductance spans the paper's 1–100 µS
/// window over 16 levels and a 30 ns pulse train reproduces the Fig. 1
/// SET/RESET staircases.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Current prefactor `I0` in amperes.
    pub i0: f64,
    /// Gap attenuation length `g0` in nanometres.
    pub g0: f64,
    /// I–V shape voltage `V0` in volts.
    pub v0: f64,
    /// Hard physical bounds on the gap, in nanometres.
    pub gap_min: f64,
    /// See [`DeviceParams::gap_min`].
    pub gap_max: f64,
    /// SET gap-velocity prefactor in nm/s (already includes the ambient
    /// Arrhenius factor `exp(−Ea/kT_amb)`).
    pub nu_set: f64,
    /// RESET gap-velocity prefactor in nm/s.
    pub nu_reset: f64,
    /// Dynamics shape voltage `V_dyn` in volts (smaller ⇒ sharper freeze-out
    /// of filament motion at low bias).
    pub v_dyn: f64,
    /// Activation energy for filament motion in eV (used only for the Joule
    /// heating correction relative to ambient).
    pub ea: f64,
    /// Thermal resistance in K/W for Joule self-heating; 0 disables heating.
    pub r_th: f64,
    /// Read voltage in volts at which chord conductance is defined.
    pub v_read: f64,
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self {
            i0: 75e-6,
            g0: 0.25,
            v0: 0.25,
            gap_min: 0.1,
            gap_max: 1.7,
            nu_set: 1.5e3,
            nu_reset: 30.0,
            v_dyn: 0.15,
            ea: 0.6,
            r_th: 5.0e5,
            v_read: 0.2,
        }
    }
}

impl DeviceParams {
    /// Chord conductance `I(v_read, gap)/v_read` for a given gap, in siemens.
    pub fn conductance_at_gap(&self, gap: f64) -> f64 {
        self.i0 * (-gap / self.g0).exp() * (self.v_read / self.v0).sinh() / self.v_read
    }

    /// Inverse of [`conductance_at_gap`](Self::conductance_at_gap): gap that
    /// yields the requested read conductance (clamped to physical bounds).
    pub fn gap_for_conductance(&self, g_target: f64) -> f64 {
        let g_ref = self.i0 * (self.v_read / self.v0).sinh() / self.v_read;
        let gap = -self.g0 * (g_target / g_ref).ln();
        gap.clamp(self.gap_min, self.gap_max)
    }
}

/// One RRAM device: the compact-model parameters plus its gap state.
///
/// # Examples
///
/// ```
/// use gramc_device::{RramDevice, DeviceParams};
///
/// let mut dev = RramDevice::new(DeviceParams::default());
/// let g_fresh = dev.read_conductance();
/// // A strong positive (SET) voltage grows the filament => conductance up.
/// dev.apply_voltage(1.5, 30e-9);
/// assert!(dev.read_conductance() > g_fresh);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RramDevice {
    params: DeviceParams,
    gap: f64,
}

impl RramDevice {
    /// Creates a device in its high-resistance (maximum-gap) state.
    pub fn new(params: DeviceParams) -> Self {
        let gap = params.gap_max;
        Self { params, gap }
    }

    /// Creates a device programmed so its read conductance equals
    /// `conductance` (in siemens), clamped to the physical range.
    pub fn with_conductance(params: DeviceParams, conductance: f64) -> Self {
        let gap = params.gap_for_conductance(conductance);
        Self { params, gap }
    }

    /// Applies per-device (device-to-device) variability by perturbing `I0`
    /// and `g0` with the given relative sigmas.
    pub fn with_variation<R: Rng + ?Sized>(
        mut self,
        rng: &mut R,
        i0_rel_sigma: f64,
        g0_rel_sigma: f64,
    ) -> Self {
        let n1 = gramc_box_muller(rng);
        let n2 = gramc_box_muller(rng);
        self.params.i0 *= (1.0 + i0_rel_sigma * n1).max(0.1);
        self.params.g0 *= (1.0 + g0_rel_sigma * n2).max(0.1);
        self
    }

    /// The model parameters.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Current tunneling gap in nanometres.
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// Forces the gap (clamped to bounds). Used by tests and by the
    /// cycle-to-cycle noise injection in [`crate::OneTOneR`].
    pub fn set_gap(&mut self, gap: f64) {
        self.gap = gap.clamp(self.params.gap_min, self.params.gap_max);
    }

    /// Device current at voltage `v` (signed; `sinh` gives the correct
    /// polarity for negative bias).
    pub fn current(&self, v: f64) -> f64 {
        self.params.i0 * (-self.gap / self.params.g0).exp() * (v / self.params.v0).sinh()
    }

    /// Chord conductance at the model's read voltage, in siemens.
    pub fn read_conductance(&self) -> f64 {
        self.params.conductance_at_gap(self.gap)
    }

    /// Gap velocity `dg/dt` (nm/s) at device voltage `v`.
    ///
    /// Positive `v` (SET polarity) returns a negative velocity (gap shrinks,
    /// filament grows); negative `v` (RESET) returns a positive velocity.
    /// Joule self-heating accelerates both directions.
    pub fn gap_velocity(&self, v: f64) -> f64 {
        if v == 0.0 {
            return 0.0;
        }
        let nu = if v > 0.0 { self.params.nu_set } else { self.params.nu_reset };
        let base = -nu * (v / self.params.v_dyn).sinh();
        if self.params.r_th > 0.0 {
            let power = (v * self.current(v)).abs();
            let t = T_AMBIENT + power * self.params.r_th;
            let accel = (self.params.ea / K_B_OVER_Q * (1.0 / T_AMBIENT - 1.0 / t)).exp();
            base * accel
        } else {
            base
        }
    }

    /// Integrates the gap dynamics for `duration` seconds at constant device
    /// voltage `v`, with adaptive sub-stepping so a single call never moves
    /// the gap by more than ~1 % of its range per sub-step.
    pub fn apply_voltage(&mut self, v: f64, duration: f64) {
        let range = self.params.gap_max - self.params.gap_min;
        let max_step_nm = 0.01 * range;
        let mut remaining = duration;
        let mut guard = 0;
        while remaining > 0.0 && guard < 10_000 {
            guard += 1;
            let vel = self.gap_velocity(v);
            if vel == 0.0 {
                break;
            }
            let dt = (max_step_nm / vel.abs()).min(remaining);
            self.gap = (self.gap + vel * dt).clamp(self.params.gap_min, self.params.gap_max);
            remaining -= dt;
            // Saturated at a bound moving outward: nothing further happens.
            if (self.gap == self.params.gap_min && vel < 0.0)
                || (self.gap == self.params.gap_max && vel > 0.0)
            {
                break;
            }
        }
    }
}

/// Standard normal variate via Box–Muller (local copy so `gramc-device` does
/// not depend on `gramc-linalg`).
pub(crate) fn gramc_box_muller<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levels::MICRO_SIEMENS;

    #[test]
    fn conductance_window_covers_1_to_100_us() {
        let p = DeviceParams::default();
        let g_lo = p.conductance_at_gap(p.gap_max);
        let g_hi = p.conductance_at_gap(p.gap_min);
        assert!(g_lo <= 1.0 * MICRO_SIEMENS && g_hi >= 100.0 * MICRO_SIEMENS);
    }

    #[test]
    fn gap_for_conductance_roundtrips() {
        let p = DeviceParams::default();
        for g_us in [1.0, 7.6, 50.0, 100.0] {
            let gap = p.gap_for_conductance(g_us * MICRO_SIEMENS);
            let back = p.conductance_at_gap(gap) / MICRO_SIEMENS;
            assert!((back - g_us).abs() / g_us < 1e-9, "{g_us} -> {back}");
        }
    }

    #[test]
    fn current_is_odd_in_voltage() {
        let dev = RramDevice::with_conductance(DeviceParams::default(), 50.0 * MICRO_SIEMENS);
        let ip = dev.current(0.2);
        let im = dev.current(-0.2);
        assert!((ip + im).abs() < 1e-18);
        assert!(ip > 0.0);
    }

    #[test]
    fn set_polarity_increases_conductance() {
        let mut dev = RramDevice::new(DeviceParams::default());
        let g0 = dev.read_conductance();
        dev.apply_voltage(1.2, 30e-9);
        assert!(dev.read_conductance() > g0);
    }

    #[test]
    fn reset_polarity_decreases_conductance() {
        let mut dev = RramDevice::with_conductance(DeviceParams::default(), 80.0 * MICRO_SIEMENS);
        let g0 = dev.read_conductance();
        dev.apply_voltage(-1.2, 30e-9);
        assert!(dev.read_conductance() < g0);
    }

    #[test]
    fn zero_bias_is_nonvolatile() {
        let mut dev = RramDevice::with_conductance(DeviceParams::default(), 40.0 * MICRO_SIEMENS);
        let g0 = dev.read_conductance();
        dev.apply_voltage(0.0, 1.0); // a full second at zero bias
        assert_eq!(dev.read_conductance(), g0);
    }

    #[test]
    fn gap_respects_physical_bounds() {
        let p = DeviceParams::default();
        let mut dev = RramDevice::new(p.clone());
        dev.apply_voltage(2.5, 1e-3); // enormous SET dose
        assert!(dev.gap() >= p.gap_min);
        dev.apply_voltage(-2.5, 1e-3); // enormous RESET dose
        assert!(dev.gap() <= p.gap_max);
    }

    #[test]
    fn stronger_bias_moves_gap_faster() {
        let p = DeviceParams::default();
        let mut weak = RramDevice::with_conductance(p.clone(), 10.0 * MICRO_SIEMENS);
        let mut strong = RramDevice::with_conductance(p, 10.0 * MICRO_SIEMENS);
        weak.apply_voltage(0.8, 30e-9);
        strong.apply_voltage(1.2, 30e-9);
        assert!(strong.read_conductance() > weak.read_conductance());
    }

    #[test]
    fn joule_heating_accelerates_switching() {
        let mut p_hot = DeviceParams::default();
        let mut p_cold = DeviceParams::default();
        p_cold.r_th = 0.0;
        p_hot.r_th = 5.0e5;
        let dev_hot = RramDevice::with_conductance(p_hot, 50.0 * MICRO_SIEMENS);
        let dev_cold = RramDevice::with_conductance(p_cold, 50.0 * MICRO_SIEMENS);
        assert!(dev_hot.gap_velocity(1.0).abs() > dev_cold.gap_velocity(1.0).abs());
    }

    #[test]
    fn variation_changes_parameters_deterministically() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let base = RramDevice::new(DeviceParams::default());
        let varied = base.clone().with_variation(&mut rng, 0.05, 0.02);
        assert_ne!(varied.params().i0, base.params().i0);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        let varied2 = base.with_variation(&mut rng2, 0.05, 0.02);
        assert_eq!(varied.params(), varied2.params());
    }
}
