//! # gramc-device
//!
//! Device-physics substrate for GRAMC: the Stanford-PKU RRAM compact model,
//! the 1T1R cell with its NMOS access transistor, and the 16-level (4-bit)
//! conductance quantizer of the paper's write-verify scheme.
//!
//! The model hierarchy is:
//!
//! * [`RramDevice`] — filament-gap state machine with `sinh` I–V and
//!   field/temperature-accelerated gap dynamics (paper Fig. 1a),
//! * [`Nmos`] — velocity-saturated access transistor whose gate voltage sets
//!   the SET compliance current (linear in overdrive, per ref. [7]),
//! * [`OneTOneR`] — the series cell, self-consistently solving the divider
//!   every pulse sub-step; exposes [`set_pulse`](OneTOneR::set_pulse) /
//!   [`reset_pulse`](OneTOneR::reset_pulse) / [`read`](OneTOneR::read),
//! * [`LevelQuantizer`] — the 1–100 µS, 16-level target grid.
//!
//! # Examples
//!
//! ```
//! use gramc_device::{OneTOneR, DeviceParams, Nmos, CellNoise, LevelQuantizer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut cell = OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none());
//! let quant = LevelQuantizer::paper_default();
//!
//! // A V_g ramp (the paper's SET write scheme) walks the cell up the levels.
//! let mut vg = 0.75;
//! for _ in 0..40 {
//!     cell.set_pulse(vg, 2.0, 30e-9, &mut rng);
//!     vg += 0.02;
//! }
//! assert!(quant.level_of(cell.read(&mut rng)) > 4);
//! ```

#![warn(missing_docs)]

mod fault;
mod levels;
mod nmos;
mod one_t_one_r;
mod retention;
mod stanford_pku;

pub use fault::{FaultConfig, FaultKind, FaultPlan};
pub use levels::{LevelQuantizer, MICRO_SIEMENS};
pub use nmos::Nmos;
pub use one_t_one_r::{CellNoise, OneTOneR};
pub use retention::{EnduranceModel, RetentionModel};
pub use stanford_pku::{DeviceParams, RramDevice};
