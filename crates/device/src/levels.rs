//! Multi-level conductance quantization.
//!
//! The paper programs each RRAM cell to one of 16 levels (4 bits) spread
//! linearly across the 1–100 µS conductance window ("The conductance range of
//! model is 1-100 µS, spanning from level 0 to level 15").

/// One microsiemens, in siemens.
pub const MICRO_SIEMENS: f64 = 1e-6;

/// Maps conductances to discrete levels and back.
///
/// # Examples
///
/// ```
/// use gramc_device::LevelQuantizer;
///
/// let q = LevelQuantizer::paper_default();
/// assert_eq!(q.level_count(), 16);
/// let g = q.conductance_of(15);
/// assert!((g - 100e-6).abs() < 1e-12);
/// assert_eq!(q.level_of(g), 15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LevelQuantizer {
    g_min: f64,
    g_max: f64,
    levels: usize,
}

impl LevelQuantizer {
    /// Creates a quantizer with `levels` states spread linearly over
    /// `[g_min, g_max]` siemens.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `g_max <= g_min` or either bound is
    /// non-positive.
    pub fn new(g_min: f64, g_max: f64, levels: usize) -> Self {
        assert!(levels >= 2, "need at least 2 levels");
        assert!(g_min > 0.0 && g_max > g_min, "invalid conductance window");
        Self { g_min, g_max, levels }
    }

    /// The paper's configuration: 16 levels (4 bits) over 1–100 µS.
    pub fn paper_default() -> Self {
        Self::new(1.0 * MICRO_SIEMENS, 100.0 * MICRO_SIEMENS, 16)
    }

    /// A quantizer with `bits` of resolution over the paper's 1–100 µS
    /// window (used by the non-ideality ablation).
    pub fn with_bits(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8");
        Self::new(1.0 * MICRO_SIEMENS, 100.0 * MICRO_SIEMENS, 1 << bits)
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels
    }

    /// Highest level index.
    pub fn max_level(&self) -> usize {
        self.levels - 1
    }

    /// Lower edge of the conductance window, in siemens.
    pub fn g_min(&self) -> f64 {
        self.g_min
    }

    /// Upper edge of the conductance window, in siemens.
    pub fn g_max(&self) -> f64 {
        self.g_max
    }

    /// Conductance spacing between adjacent levels, in siemens.
    pub fn step(&self) -> f64 {
        (self.g_max - self.g_min) / (self.levels - 1) as f64
    }

    /// Target conductance of a level, in siemens.
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`max_level`](Self::max_level).
    pub fn conductance_of(&self, level: usize) -> f64 {
        assert!(level < self.levels, "level {level} out of range");
        self.g_min + self.step() * level as f64
    }

    /// Nearest level for a conductance (saturating at the window edges).
    pub fn level_of(&self, conductance: f64) -> usize {
        let raw = (conductance - self.g_min) / self.step();
        raw.round().clamp(0.0, self.max_level() as f64) as usize
    }

    /// Continuous (fractional) level coordinate — used by the write-verify
    /// loop to express its tolerance band in level units.
    pub fn fractional_level(&self, conductance: f64) -> f64 {
        (conductance - self.g_min) / self.step()
    }

    /// Quantizes a conductance to the nearest level's target value.
    pub fn quantize(&self, conductance: f64) -> f64 {
        self.conductance_of(self.level_of(conductance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_spec() {
        let q = LevelQuantizer::paper_default();
        assert_eq!(q.level_count(), 16);
        assert!((q.conductance_of(0) - 1e-6).abs() < 1e-15);
        assert!((q.conductance_of(15) - 100e-6).abs() < 1e-15);
        assert!((q.step() - 6.6e-6).abs() < 1e-12);
    }

    #[test]
    fn level_roundtrip() {
        let q = LevelQuantizer::paper_default();
        for level in 0..16 {
            assert_eq!(q.level_of(q.conductance_of(level)), level);
        }
    }

    #[test]
    fn level_of_saturates() {
        let q = LevelQuantizer::paper_default();
        assert_eq!(q.level_of(0.0), 0);
        assert_eq!(q.level_of(1.0), 15);
    }

    #[test]
    fn midpoints_round_to_nearest() {
        let q = LevelQuantizer::paper_default();
        let just_below_mid = q.conductance_of(3) + 0.49 * q.step();
        assert_eq!(q.level_of(just_below_mid), 3);
        let just_above_mid = q.conductance_of(3) + 0.51 * q.step();
        assert_eq!(q.level_of(just_above_mid), 4);
    }

    #[test]
    fn fractional_level_is_linear() {
        let q = LevelQuantizer::paper_default();
        let f = q.fractional_level(q.conductance_of(7) + 0.25 * q.step());
        assert!((f - 7.25).abs() < 1e-9);
    }

    #[test]
    fn with_bits_scales_levels() {
        assert_eq!(LevelQuantizer::with_bits(4).level_count(), 16);
        assert_eq!(LevelQuantizer::with_bits(2).level_count(), 4);
        assert_eq!(LevelQuantizer::with_bits(8).level_count(), 256);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_level() {
        let _ = LevelQuantizer::new(1e-6, 1e-4, 1);
    }

    #[test]
    fn quantize_idempotent() {
        let q = LevelQuantizer::paper_default();
        let g = 42.3e-6;
        assert_eq!(q.quantize(q.quantize(g)), q.quantize(g));
    }
}
