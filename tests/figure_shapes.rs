//! Small-scale versions of every figure experiment, asserted as shape
//! invariants — the CI-sized counterpart of the `fig*` bench binaries.

use gramc::array::{reset_staircase, set_staircase, WriteVerifyController};
use gramc::core::{MacroConfig, MacroGroup, NonidealityConfig};
use gramc::data::DigitsDataset;
use gramc::device::{CellNoise, DeviceParams, Nmos, OneTOneR};
use gramc::linalg::{random, vector};
use gramc::nn::{GramcLenet, LeNet5, Precision, Tensor3};

fn quiet_cell() -> OneTOneR {
    OneTOneR::new(DeviceParams::default(), Nmos::default(), CellNoise::none())
}

#[test]
fn fig1b_shape_set_staircases() {
    // (i) both step sizes climb monotonically; (ii) 0.02 V/step reaches the
    // top level within 30 pulses; (iii) 0.01 V/step is markedly slower.
    let wv = WriteVerifyController::paper_default();
    let mut rng = random::seeded_rng(300);
    let mut c1 = quiet_cell();
    let fast = set_staircase(&mut c1, wv.config(), wv.quantizer(), 0.02, 0, 30, &mut rng);
    let mut c2 = quiet_cell();
    let slow = set_staircase(&mut c2, wv.config(), wv.quantizer(), 0.01, 0, 30, &mut rng);
    for w in fast.windows(2) {
        assert!(w[1].1 >= w[0].1 - 0.3, "fast staircase dipped: {w:?}");
    }
    assert!(fast.last().unwrap().1 >= 14.0, "fast top {:?}", fast.last());
    assert!(
        slow.last().unwrap().1 < fast.last().unwrap().1 - 3.0,
        "0.01 V/step should be clearly slower"
    );
}

#[test]
fn fig1c_shape_reset_staircases() {
    let wv = WriteVerifyController::paper_default();
    let mut rng = random::seeded_rng(301);
    let mut c1 = quiet_cell();
    let s02 = reset_staircase(&mut c1, wv.config(), wv.quantizer(), 0.02, 15, 30, &mut rng);
    let mut c2 = quiet_cell();
    let s03 = reset_staircase(&mut c2, wv.config(), wv.quantizer(), 0.03, 15, 30, &mut rng);
    for w in s02.windows(2) {
        assert!(w[1].1 <= w[0].1 + 0.3, "reset staircase rose: {w:?}");
    }
    assert!(s03.last().unwrap().1 <= 1.5, "0.03 V/step should reach the bottom");
    // Larger V_SL step descends at least as fast at every pulse count.
    let mid = 10;
    assert!(s03[mid].1 <= s02[mid].1 + 0.5, "0.03 should lead 0.02 at pulse {mid}");
}

#[test]
fn fig4_error_band_at_reduced_scale() {
    // All four modes on 24-dim workloads with paper noise: errors within
    // the Fig. 4 "around ten percent" band (generously 25 %), and non-zero.
    let n = 24;
    let mut rng = random::seeded_rng(302);
    let config = MacroConfig { array_rows: n, array_cols: n, ..Default::default() };
    let mut group = MacroGroup::new(4, config, 303);

    let a = random::wishart(&mut rng, n, 16 * n);
    let x = random::normal_vector(&mut rng, n);
    let op = group.load_matrix(&a).unwrap();
    let mvm_err = vector::rel_error(&group.mvm(op, &x).unwrap(), &a.matvec(&x));
    assert!(mvm_err > 0.001 && mvm_err < 0.25, "MVM {mvm_err}");

    let quantized = group.operator_info(op).unwrap().quantized.clone();
    let x_sol = group.solve_inv(op, &x).unwrap();
    let inv_err = vector::rel_error(&x_sol, &gramc::linalg::lu::solve(&quantized, &x).unwrap());
    assert!(inv_err > 0.001 && inv_err < 0.25, "INV {inv_err}");
}

#[test]
fn fig5_precision_ordering_holds_at_reduced_scale() {
    // Train a small model, then check INT4 ≤ INT8 within tolerance and both
    // close to FP32 — the Fig. 5 bar-chart shape.
    let mut rng = random::seeded_rng(304);
    let ds = DigitsDataset::generate(&mut rng, 300, 100);
    let train: Vec<Tensor3> =
        ds.train.iter().map(|d| Tensor3::from_vec(1, 28, 28, d.pixels.clone())).collect();
    let train_labels: Vec<usize> = ds.train.iter().map(|d| d.label).collect();
    let test: Vec<Tensor3> =
        ds.test.iter().map(|d| Tensor3::from_vec(1, 28, 28, d.pixels.clone())).collect();
    let test_labels: Vec<usize> = ds.test.iter().map(|d| d.label).collect();

    let mut net = LeNet5::new(&mut rng);
    for _ in 0..4 {
        net.train_epoch(&train, &train_labels, 0.002, 0.9);
    }
    let fp32 = net.evaluate(&test, &test_labels);
    // The reduced-scale model is deliberately under-trained (4 epochs, 300
    // images); what this test pins down is that the ANALOG path tracks the
    // software model, not the absolute accuracy (that is fig5_lenet's job).
    assert!(fp32 > 0.35, "software model degenerate: {fp32}");

    let cfg = MacroConfig { nonideal: NonidealityConfig::paper_default(), ..Default::default() };
    let mut int8 = GramcLenet::new(net.clone(), Precision::Int8, cfg.clone(), 16, 305).unwrap();
    let acc8 = int8.evaluate(&test, &test_labels).unwrap();
    let mut int4 = GramcLenet::new(net, Precision::Int4, cfg, 16, 306).unwrap();
    let acc4 = int4.evaluate(&test, &test_labels).unwrap();

    assert!(acc4 >= fp32 - 0.15, "INT4 collapsed: {acc4} vs fp32 {fp32}");
    assert!(acc8 >= fp32 - 0.10, "INT8 collapsed: {acc8} vs fp32 {fp32}");
    // 100 test images ⇒ ±5 % binomial noise; 0.08 ≈ 1.6σ tie margin.
    assert!(acc4 <= acc8 + 0.08, "ordering violated: INT4 {acc4} > INT8 {acc8}");
}
