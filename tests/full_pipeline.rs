//! Cross-crate integration tests: the complete write-verify → configure →
//! solve pipelines through the GRAMC system, for all four computing modes,
//! at paper-default noise.

use gramc::core::compiler::{compile, execute, MatrixOp};
use gramc::core::isa::{BufferRef, Instruction};
use gramc::core::system::GramcSystem;
use gramc::core::{MacroConfig, MacroGroup, NonidealityConfig};
use gramc::data::{spiked_gram, Pm25Dataset};
use gramc::linalg::{lu, pseudoinverse, random, vector, SymmetricEigen};

const N: usize = 24;

fn paper_system(seed: u64) -> GramcSystem {
    GramcSystem::new(
        4,
        MacroConfig { array_rows: N, array_cols: N, ..Default::default() },
        seed,
        8192,
    )
}

#[test]
fn mvm_through_the_controller_with_paper_noise() {
    let mut rng = random::seeded_rng(200);
    let a = random::wishart(&mut rng, N, 16 * N);
    let x = random::normal_vector(&mut rng, N);
    let mut sys = paper_system(201);
    sys.write_global(0, a.as_slice()).unwrap();
    sys.write_global(1024, &x).unwrap();
    sys.load_program(vec![
        Instruction::LoadMatrix {
            slot: 0,
            rows: N as u16,
            cols: N as u16,
            src: BufferRef::global(0, (N * N) as u32),
        },
        Instruction::Mvm {
            slot: 0,
            src: BufferRef::global(1024, N as u32),
            dst: BufferRef::output(0, N as u32),
        },
        Instruction::Halt,
    ]);
    sys.run(100).unwrap();
    let y = sys.read_output(BufferRef::output(0, N as u32)).unwrap();
    let err = vector::rel_error(&y, &a.matvec(&x));
    assert!(err < 0.25, "MVM error out of Fig. 4 band: {err}");
    assert!(err > 1e-4, "noise should be present: {err}");
}

#[test]
fn inv_through_the_controller_against_quantized_reference() {
    let mut rng = random::seeded_rng(202);
    let a = random::spd_with_condition(&mut rng, N, 3.0);
    let b = random::normal_vector(&mut rng, N);
    let mut sys = paper_system(203);
    let program = compile(&[MatrixOp::SolveInv { a: a.clone(), b: b.clone() }]).unwrap();
    let out = execute(&mut sys, &program, 1000).unwrap();
    let x_ref = lu::solve(&a, &b).unwrap();
    let err = vector::rel_error(&out[0], &x_ref);
    assert!(err < 0.30, "INV error {err}");
}

#[test]
fn pinv_regression_end_to_end() {
    let mut rng = random::seeded_rng(204);
    let ds = Pm25Dataset::generate(&mut rng, 128, 0.05);
    let mut group = MacroGroup::new(2, MacroConfig::default(), 205);
    let op = group.load_matrix(&ds.design).unwrap();
    let w = group.solve_pinv(op, &ds.response).unwrap();
    let w_ref = pseudoinverse(&ds.design).unwrap().matvec(&ds.response);
    let err = vector::rel_error(&w, &w_ref);
    assert!(err < 0.15, "PINV error {err}");
}

#[test]
fn egv_end_to_end_on_spiked_gram() {
    let mut rng = random::seeded_rng(206);
    let gram = spiked_gram(&mut rng, N, 4 * N, 3.0);
    let mut group =
        MacroGroup::new(2, MacroConfig { array_rows: N, array_cols: N, ..Default::default() }, 207);
    let op = group.load_matrix(&gram).unwrap();
    let sol = group.solve_egv(op).unwrap();
    let eig = SymmetricEigen::new(&gram).unwrap();
    let err = vector::rel_error_up_to_sign(&sol.eigenvector, &eig.eigenvector(0));
    assert!(err < 0.25, "EGV error {err}");
    let lam_err = (sol.eigenvalue - eig.eigenvalues[0]).abs() / eig.eigenvalues[0];
    assert!(lam_err < 0.15, "eigenvalue error {lam_err}");
}

#[test]
fn pulse_level_write_verify_pipeline() {
    // Full pulse-mode programming (no direct seating) through a small solve.
    let mut rng = random::seeded_rng(208);
    let a = random::spd_with_condition(&mut rng, 8, 3.0);
    let b = random::normal_vector(&mut rng, 8);
    let config = MacroConfig {
        array_rows: 8,
        array_cols: 8,
        nonideal: NonidealityConfig::paper_default().with_pulse_programming(),
        ..Default::default()
    };
    let mut group = MacroGroup::new(2, config, 209);
    let op = group.load_matrix(&a).unwrap();
    let x = group.solve_inv(op, &b).unwrap();
    let x_ref = lu::solve(&a, &b).unwrap();
    let err = vector::rel_error(&x, &x_ref);
    assert!(err < 0.30, "pulse-programmed INV error {err}");
}

#[test]
fn reconfiguration_sequence_all_four_modes_one_system() {
    // The headline claim: one macro group, four computing modes in sequence.
    let mut rng = random::seeded_rng(210);
    let a = random::spd_with_condition(&mut rng, N, 3.0);
    let tall = random::gaussian_matrix(&mut rng, N, 4);
    let gram = spiked_gram(&mut rng, N, 4 * N, 3.0);
    let x = random::normal_vector(&mut rng, N);
    let program = compile(&[
        MatrixOp::Mvm { a: a.clone(), x: x.clone() },
        MatrixOp::SolveInv { a: a.clone(), b: x.clone() },
        MatrixOp::SolvePinv { a: tall.clone(), b: x.clone() },
        MatrixOp::SolveEgv { a: gram.clone() },
    ])
    .unwrap();
    let mut sys = paper_system(211);
    let out = execute(&mut sys, &program, 10_000).unwrap();
    assert_eq!(out.len(), 4);
    assert!(vector::rel_error(&out[0], &a.matvec(&x)) < 0.25, "MVM");
    assert!(vector::rel_error(&out[1], &lu::solve(&a, &x).unwrap()) < 0.30, "INV");
    let w_ref = pseudoinverse(&tall).unwrap().matvec(&x);
    assert!(vector::rel_error(&out[2], &w_ref) < 0.30, "PINV");
    let eig = SymmetricEigen::new(&gram).unwrap();
    assert!(vector::rel_error_up_to_sign(&out[3], &eig.eigenvector(0)) < 0.25, "EGV");
    // All macros recycled by the compiler's FreeMatrix instructions.
    assert_eq!(sys.macro_group().free_macros(), 4);
}

#[test]
fn analog_iterative_refinement_converges() {
    // The mixed-precision refinement loop from the linear_system example,
    // asserted as an invariant: residual contraction to near machine level.
    let mut rng = random::seeded_rng(212);
    let a = random::spd_with_condition(&mut rng, N, 5.0);
    let b = random::normal_vector(&mut rng, N);
    let mut group =
        MacroGroup::new(2, MacroConfig { array_rows: N, array_cols: N, ..Default::default() }, 213);
    let op = group.load_matrix(&a).unwrap();
    let mut x = vec![0.0; N];
    for _ in 0..40 {
        let r = vector::sub(&b, &a.matvec(&x));
        if vector::norm2(&r) / vector::norm2(&b) < 1e-9 {
            break;
        }
        let dx = group.solve_inv(op, &r).unwrap();
        vector::axpy(1.0, &dx, &mut x);
    }
    let res = vector::rel_error(&a.matvec(&x), &b);
    assert!(res < 1e-8, "refinement stalled at {res}");
}
