//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary well-formed inputs.

use gramc::array::{ActiveRegion, ArrayConfig, ConductanceMapper, CrossbarArray, SignedEncoding};
use gramc::circuit::{dc_solve, topology, OpampModel};
use gramc::device::LevelQuantizer;
use gramc::linalg::{lu, qr, svd, vector, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0..3.0f64, n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v))
}

fn diag_dominant(n: usize) -> impl Strategy<Value = Matrix> {
    small_matrix(n).prop_map(move |mut m| {
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lu_solve_residual_is_small(a in diag_dominant(6), b in proptest::collection::vec(-5.0..5.0f64, 6)) {
        let x = lu::solve(&a, &b).unwrap();
        prop_assert!(vector::rel_error(&a.matvec(&x), &b) < 1e-9);
    }

    #[test]
    fn lu_inverse_roundtrips(a in diag_dominant(5)) {
        let inv = lu::inverse(&a).unwrap();
        prop_assert!(a.matmul(&inv).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn qr_reconstructs(a in small_matrix(5)) {
        if let Ok(qr_dec) = qr::QrDecomposition::new(&a) {
            let rec = qr_dec.q().matmul(&qr_dec.r());
            prop_assert!(rec.approx_eq(&a, 1e-9));
        }
    }

    #[test]
    fn svd_singular_values_nonneg_and_sorted(a in small_matrix(5)) {
        let s = svd::Svd::new(&a).unwrap();
        for w in s.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.singular_values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mapping_roundtrip_bounded_by_half_level(a in small_matrix(6)) {
        prop_assume!(a.max_abs() > 1e-6);
        let mapper = ConductanceMapper::paper_default();
        let mapped = mapper.map(&a).unwrap();
        let err = (&mapped.dequantize() - &a).max_abs();
        prop_assert!(err <= 0.5 * mapped.scale + 1e-12);
    }

    #[test]
    fn crossbar_fast_path_equals_conductance_matvec(
        levels in proptest::collection::vec(0usize..16, 9),
        v in proptest::collection::vec(-0.2..0.2f64, 3),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut xbar = CrossbarArray::new(ArrayConfig::ideal(3, 3), &mut rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(3, 3);
        let targets = Matrix::from_fn(3, 3, |i, j| q.conductance_of(levels[i * 3 + j]));
        xbar.program_direct(region, &targets, &q, 0.0, &mut rng).unwrap();
        let i_fast = xbar.row_currents(region, &v, &mut rng).unwrap();
        let i_ref = targets.matvec(&v);
        for (a, b) in i_fast.iter().zip(&i_ref) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn inv_circuit_solves_diag_dominant(a in diag_dominant(4), b in proptest::collection::vec(-1.0..1.0f64, 4)) {
        // Map to conductances and solve through the MNA; compare digital.
        let unit = 40e-6;
        let floor = 1e-6;
        let g_pos = a.map(|x| if x > 0.0 { x * unit + floor } else { floor });
        let g_neg = a.map(|x| if x < 0.0 { -x * unit + floor } else { floor });
        let v_unit = 0.05;
        let i_in: Vec<f64> = b.iter().map(|bi| -unit * bi * v_unit).collect();
        let t = topology::build_inv(&g_pos, &g_neg, &i_in, OpampModel::ideal()).unwrap();
        let sol = dc_solve(&t.circuit).unwrap();
        let x: Vec<f64> = sol.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
        let x_ref = lu::solve(&a, &b).unwrap();
        for (u, w) in x.iter().zip(&x_ref) {
            prop_assert!((u - w).abs() < 1e-6, "{x:?} vs {x_ref:?}");
        }
    }

    #[test]
    fn softmax_is_a_distribution(xs in proptest::collection::vec(-20.0..20.0f64, 1..12)) {
        let p = gramc::core::softmax(&xs);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn dac_adc_roundtrip_error_bounded(x in -1.0..1.0f64) {
        let dac = gramc::core::Dac::new(8, 0.2);
        let adc = gramc::core::Adc::new(10, 0.2);
        let v = dac.convert(x);
        let back = adc.convert(v);
        prop_assert!((back - x).abs() <= 1.0 / 127.0 + 1.0 / 511.0);
    }
}
