//! Cross-crate property-based tests: invariants that must hold for arbitrary
//! well-formed inputs.
//!
//! The build environment has no crates.io access, so instead of proptest the
//! cases are drawn from a seeded [`StdRng`] — same invariants, deterministic
//! replay (the failing case is identified by its loop index).

use gramc::array::{ActiveRegion, ArrayConfig, ConductanceMapper, CrossbarArray};
use gramc::circuit::{dc_solve, topology, OpampModel};
use gramc::device::LevelQuantizer;
use gramc::linalg::{lu, qr, svd, vector, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 32;

fn uniform_vec(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

fn small_matrix(rng: &mut StdRng, n: usize) -> Matrix {
    Matrix::from_vec(n, n, uniform_vec(rng, n * n, -3.0, 3.0))
}

fn diag_dominant(rng: &mut StdRng, n: usize) -> Matrix {
    let mut m = small_matrix(rng, n);
    for i in 0..n {
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] = row_sum + 1.0;
    }
    m
}

#[test]
fn lu_solve_residual_is_small() {
    let mut rng = StdRng::seed_from_u64(0x1001);
    for case in 0..CASES {
        let a = diag_dominant(&mut rng, 6);
        let b = uniform_vec(&mut rng, 6, -5.0, 5.0);
        let x = lu::solve(&a, &b).unwrap();
        let res = vector::rel_error(&a.matvec(&x), &b);
        assert!(res < 1e-9, "case {case}: residual {res}");
    }
}

#[test]
fn lu_inverse_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0x1002);
    for case in 0..CASES {
        let a = diag_dominant(&mut rng, 5);
        let inv = lu::inverse(&a).unwrap();
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(5), 1e-8), "case {case}: A·A⁻¹ ≠ I");
    }
}

#[test]
fn qr_reconstructs() {
    let mut rng = StdRng::seed_from_u64(0x1003);
    for case in 0..CASES {
        let a = small_matrix(&mut rng, 5);
        if let Ok(qr_dec) = qr::QrDecomposition::new(&a) {
            let rec = qr_dec.q().matmul(&qr_dec.r());
            assert!(rec.approx_eq(&a, 1e-9), "case {case}: QR does not reconstruct");
        }
    }
}

#[test]
fn svd_singular_values_nonneg_and_sorted() {
    let mut rng = StdRng::seed_from_u64(0x1004);
    for case in 0..CASES {
        let a = small_matrix(&mut rng, 5);
        let s = svd::Svd::new(&a).unwrap();
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "case {case}: unsorted {:?}", s.singular_values);
        }
        assert!(s.singular_values.iter().all(|&v| v >= 0.0), "case {case}");
    }
}

#[test]
fn mapping_roundtrip_bounded_by_half_level() {
    let mut rng = StdRng::seed_from_u64(0x1005);
    let mut tested = 0;
    for case in 0..CASES {
        let a = small_matrix(&mut rng, 6);
        if a.max_abs() <= 1e-6 {
            continue; // the analogue of prop_assume!
        }
        tested += 1;
        let mapper = ConductanceMapper::paper_default();
        let mapped = mapper.map(&a).unwrap();
        let err = (&mapped.dequantize() - &a).max_abs();
        assert!(err <= 0.5 * mapped.scale + 1e-12, "case {case}: error {err}");
    }
    assert!(tested > 0, "all cases were degenerate");
}

#[test]
fn crossbar_fast_path_equals_conductance_matvec() {
    let mut rng = StdRng::seed_from_u64(0x1006);
    for case in 0..CASES {
        let levels: Vec<usize> = (0..9).map(|_| rng.gen_range(0..16usize)).collect();
        let v = uniform_vec(&mut rng, 3, -0.2, 0.2);
        let mut xbar_rng = StdRng::seed_from_u64(42);
        let mut xbar = CrossbarArray::new(ArrayConfig::ideal(3, 3), &mut xbar_rng);
        let q = LevelQuantizer::paper_default();
        let region = ActiveRegion::full(3, 3);
        let targets = Matrix::from_fn(3, 3, |i, j| q.conductance_of(levels[i * 3 + j]));
        xbar.program_direct(region, &targets, &q, 0.0, &mut xbar_rng).unwrap();
        let i_fast = xbar.row_currents(region, &v, &mut xbar_rng).unwrap();
        let i_ref = targets.matvec(&v);
        for (a, b) in i_fast.iter().zip(&i_ref) {
            assert!((a - b).abs() < 1e-12, "case {case}: {i_fast:?} vs {i_ref:?}");
        }
    }
}

#[test]
fn inv_circuit_solves_diag_dominant() {
    let mut rng = StdRng::seed_from_u64(0x1007);
    for case in 0..CASES {
        let a = diag_dominant(&mut rng, 4);
        let b = uniform_vec(&mut rng, 4, -1.0, 1.0);
        // Map to conductances and solve through the MNA; compare digital.
        let unit = 40e-6;
        let floor = 1e-6;
        let g_pos = a.map(|x| if x > 0.0 { x * unit + floor } else { floor });
        let g_neg = a.map(|x| if x < 0.0 { -x * unit + floor } else { floor });
        let v_unit = 0.05;
        let i_in: Vec<f64> = b.iter().map(|bi| -unit * bi * v_unit).collect();
        let t = topology::build_inv(&g_pos, &g_neg, &i_in, OpampModel::ideal()).unwrap();
        let sol = dc_solve(&t.circuit).unwrap();
        let x: Vec<f64> = sol.voltages(&t.x_nodes).iter().map(|v| v / v_unit).collect();
        let x_ref = lu::solve(&a, &b).unwrap();
        for (u, w) in x.iter().zip(&x_ref) {
            assert!((u - w).abs() < 1e-6, "case {case}: {x:?} vs {x_ref:?}");
        }
    }
}

#[test]
fn softmax_is_a_distribution() {
    let mut rng = StdRng::seed_from_u64(0x1008);
    for case in 0..CASES {
        let n = rng.gen_range(1..12usize);
        let xs = uniform_vec(&mut rng, n, -20.0, 20.0);
        let p = gramc::core::softmax(&xs);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "case {case}: sum {sum}");
        assert!(p.iter().all(|&v| v >= 0.0), "case {case}");
    }
}

#[test]
fn dac_adc_roundtrip_error_bounded() {
    let mut rng = StdRng::seed_from_u64(0x1009);
    for case in 0..CASES {
        let x = rng.gen_range(-1.0..1.0f64);
        let dac = gramc::core::Dac::new(8, 0.2);
        let adc = gramc::core::Adc::new(10, 0.2);
        let v = dac.convert(x);
        let back = adc.convert(v);
        assert!((back - x).abs() <= 1.0 / 127.0 + 1.0 / 511.0, "case {case}: {back} vs {x}");
    }
}
