//! Cross-validation of the two EGV implementations: the macro layer's
//! behavioural clipped-fixed-point iteration against the full MNA transient
//! of the EGV circuit (`gramc-circuit`). Both must settle on the same
//! dominant eigenvector — they are two views of the same physics (the
//! transient's saturated equilibrium *is* the clipped fixed point).

use gramc::circuit::{topology, transient_solve, OpampModel, TransientConfig};
use gramc::linalg::{vector, Matrix, SymmetricEigen};

/// Splits a signed matrix into conductance planes with the level-0 floor.
fn split(a: &Matrix, unit: f64, floor: f64) -> (Matrix, Matrix) {
    (
        a.map(|v| if v > 0.0 { v * unit + floor } else { floor }),
        a.map(|v| if v < 0.0 { -v * unit + floor } else { floor }),
    )
}

/// The behavioural map used by `MacroGroup::solve_egv`: iterate
/// `u ← clip(ΔG·u / g_λ)` to its fixed point.
fn behavioural_egv(dg: &Matrix, g_lambda: f64, v_sat: f64, n: usize) -> Vec<f64> {
    let mut u: Vec<f64> = (0..n).map(|k| 1e-3 * (((k * 37 + 11) % 17) as f64 - 8.0)).collect();
    for _ in 0..200_000 {
        let w = dg.matvec(&u);
        let next: Vec<f64> = w.iter().map(|wi| (wi / g_lambda).clamp(-v_sat, v_sat)).collect();
        let (nd, _) = vector::normalize(&next);
        let (ud, _) = vector::normalize(&u);
        let delta = vector::rel_error_up_to_sign(&nd, &ud);
        let amp =
            (vector::norm2(&next) - vector::norm2(&u)).abs() / vector::norm2(&next).max(1e-30);
        u = next;
        if delta < 1e-12 && amp < 1e-12 {
            break;
        }
    }
    u
}

#[test]
fn behavioural_fixed_point_matches_circuit_transient() {
    // Small PSD matrix with a clear dominant mode.
    let a = Matrix::from_rows(&[
        &[2.2, 0.7, 0.3, 0.1],
        &[0.7, 1.8, 0.2, 0.2],
        &[0.3, 0.2, 1.2, 0.1],
        &[0.1, 0.2, 0.1, 0.9],
    ]);
    let eig = SymmetricEigen::new(&a).unwrap();
    let lambda1 = eig.eigenvalues[0];

    let unit = 40e-6;
    let floor = 1e-6;
    let (gp, gn) = split(&a, unit, floor);
    let g_lambda = 0.97 * lambda1 * unit;
    let v_sat = 1.2;

    // Behavioural fixed point on the exact ΔG.
    let dg = &gp - &gn;
    let u_beh = behavioural_egv(&dg, g_lambda, v_sat, 4);
    let (u_beh, norm_beh) = vector::normalize(&u_beh);
    assert!(norm_beh > 0.05, "behavioural mode did not grow");

    // Full circuit transient (high gain, dt resolving the gain-fast growth).
    let t = topology::build_egv(&gp, &gn, g_lambda, OpampModel::with_gain(1e4)).unwrap();
    let n_ops = t.circuit.opamp_count();
    let seed: Vec<f64> = (0..n_ops).map(|k| 1e-4 * ((k % 5) as f64 - 2.0)).collect();
    let cfg =
        TransientConfig { dt: Some(2e-11), t_max: 2e-6, settle_tol: 1e-6, ..Default::default() };
    let tr = transient_solve(&t.circuit, &seed, &cfg).unwrap();
    let x_raw = tr.voltages(&t.x_nodes);
    let (x_circ, norm_circ) = vector::normalize(&x_raw);
    assert!(norm_circ > 0.05, "circuit mode did not grow");

    // The two must agree on the direction (and both match the eigenvector).
    let cross_err = vector::rel_error_up_to_sign(&u_beh, &x_circ);
    assert!(cross_err < 0.05, "behavioural vs circuit: {cross_err}");
    let v_ref = eig.eigenvector(0);
    assert!(vector::rel_error_up_to_sign(&u_beh, &v_ref) < 0.06, "behavioural vs digital");
    assert!(vector::rel_error_up_to_sign(&x_circ, &v_ref) < 0.06, "circuit vs digital");
}

#[test]
fn both_implementations_decay_when_lambda_overshoots() {
    let a = Matrix::from_rows(&[&[1.5, 0.4], &[0.4, 1.0]]);
    let eig = SymmetricEigen::new(&a).unwrap();
    let unit = 40e-6;
    let (gp, gn) = split(&a, unit, 1e-6);
    let g_lambda = 1.15 * eig.eigenvalues[0] * unit; // above the spectrum

    let dg = &gp - &gn;
    let mut u = vec![1e-3, -1e-3];
    for _ in 0..20_000 {
        u = dg.matvec(&u).iter().map(|w| (w / g_lambda).clamp(-1.2, 1.2)).collect();
    }
    assert!(vector::norm2(&u) < 1e-9, "behavioural map should decay");

    let t = topology::build_egv(&gp, &gn, g_lambda, OpampModel::with_gain(1e4)).unwrap();
    let n_ops = t.circuit.opamp_count();
    let seed: Vec<f64> = (0..n_ops).map(|k| 1e-3 * ((k % 3) as f64 - 1.0)).collect();
    let cfg = TransientConfig { dt: Some(2e-11), t_max: 2e-6, ..Default::default() };
    let tr = transient_solve(&t.circuit, &seed, &cfg).unwrap();
    assert!(vector::norm2(&tr.voltages(&t.x_nodes)) < 1e-4, "circuit should decay when λ̂ > λ₁");
}
